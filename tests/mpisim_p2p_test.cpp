#include <gtest/gtest.h>

#include <vector>

#include "mpisim/mpi.hpp"
#include "platform/cluster.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::mpi;

namespace {

plat::Platform test_platform(int nodes = 4) {
  plat::Platform p;
  plat::ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = nodes;
  spec.power = 1e9;
  spec.bandwidth = 1e8;
  spec.latency = 1e-5;
  spec.backbone_bandwidth = 1e9;
  spec.backbone_latency = 1e-5;
  build_cluster(p, spec);
  p.set_net_model(plat::PiecewiseNetModel::affine_model());
  return p;
}

std::vector<int> one_per_host(int n) {
  std::vector<int> hosts(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) hosts[static_cast<std::size_t>(i)] = i;
  return hosts;
}

}  // namespace

TEST(MpiP2p, EagerSendRecvCompletesWithExpectedTime) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  double recv_done = -1;
  world.launch_rank(0, [](Rank& r) -> sim::Co<void> {
    co_await r.send(1, 1000);
  });
  world.launch_rank(1, [&](Rank& r) -> sim::Co<void> {
    co_await r.recv(0, 1000);
    recv_done = r.engine().now();
  });
  engine.run();
  world.check_quiescent();
  // Latency 3e-5 + 1000 B at 1e8 B/s.
  EXPECT_NEAR(recv_done, 3e-5 + 1e-5, 1e-9);
}

TEST(MpiP2p, EagerSenderDoesNotWaitForReceiver) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  double send_done = -1, recv_done = -1;
  world.launch_rank(0, [&](Rank& r) -> sim::Co<void> {
    co_await r.send(1, 100);
    send_done = r.engine().now();
  });
  world.launch_rank(1, [&](Rank& r) -> sim::Co<void> {
    co_await r.engine().wait(r.engine().timer_async(5.0));
    co_await r.recv(0, 100);
    recv_done = r.engine().now();
  });
  engine.run();
  EXPECT_LT(send_done, 0.1);   // buffered: sender long done
  EXPECT_NEAR(recv_done, 5.0, 1e-6);
}

TEST(MpiP2p, RendezvousSenderBlocksUntilReceiverArrives) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  const std::uint64_t big = 1 << 20;  // > 64 KiB threshold
  double send_done = -1, recv_done = -1;
  world.launch_rank(0, [&](Rank& r) -> sim::Co<void> {
    co_await r.send(1, big);
    send_done = r.engine().now();
  });
  world.launch_rank(1, [&](Rank& r) -> sim::Co<void> {
    co_await r.engine().wait(r.engine().timer_async(2.0));
    co_await r.recv(0, big);
    recv_done = r.engine().now();
  });
  engine.run();
  EXPECT_GT(send_done, 2.0);  // held until the receiver showed up
  EXPECT_NEAR(send_done, recv_done, 1e-9);
  // Data time: control latency + payload at NIC speed.
  EXPECT_NEAR(recv_done, 2.0 + 3e-5 + 3e-5 + big / 1e8, 1e-4);
}

TEST(MpiP2p, EagerThresholdIsConfigurable) {
  const auto p = test_platform();
  sim::Engine engine(p);
  Config cfg;
  cfg.eager_threshold = 10;  // nearly everything goes rendezvous
  World world(engine, one_per_host(2), cfg);
  double send_done = -1;
  world.launch_rank(0, [&](Rank& r) -> sim::Co<void> {
    co_await r.send(1, 100);
    send_done = r.engine().now();
  });
  world.launch_rank(1, [](Rank& r) -> sim::Co<void> {
    co_await r.engine().wait(r.engine().timer_async(1.0));
    co_await r.recv(0, 100);
  });
  engine.run();
  EXPECT_GT(send_done, 1.0);  // rendezvous despite the small size
}

TEST(MpiP2p, MessagesMatchInFifoOrder) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  std::vector<std::uint64_t> sizes;
  world.launch_rank(0, [](Rank& r) -> sim::Co<void> {
    co_await r.send(1, 111, /*tag=*/7);
    co_await r.send(1, 222, /*tag=*/7);
  });
  world.launch_rank(1, [&](Rank& r) -> sim::Co<void> {
    auto a = r.irecv(0, 111, 7);
    auto b = r.irecv(0, 222, 7);
    co_await r.wait(a);
    co_await r.wait(b);
    sizes.push_back(a->bytes);
    sizes.push_back(b->bytes);
  });
  engine.run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 111u);  // first posted matches first sent
  EXPECT_EQ(sizes[1], 222u);
}

TEST(MpiP2p, TagsDisambiguateMessages) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  std::uint64_t got_tag5 = 0;
  world.launch_rank(0, [](Rank& r) -> sim::Co<void> {
    co_await r.send(1, 100, /*tag=*/9);
    co_await r.send(1, 200, /*tag=*/5);
  });
  world.launch_rank(1, [&](Rank& r) -> sim::Co<void> {
    auto five = r.irecv(0, 200, 5);
    co_await r.wait(five);
    got_tag5 = five->bytes;
    co_await r.recv(0, 100, 9);
  });
  engine.run();
  world.check_quiescent();
  EXPECT_EQ(got_tag5, 200u);
}

TEST(MpiP2p, AnySourceAndAnyTagMatch) {
  const auto p = test_platform(4);
  sim::Engine engine(p);
  World world(engine, one_per_host(4));
  int received = 0;
  world.launch_rank(0, [&](Rank& r) -> sim::Co<void> {
    for (int i = 0; i < 3; ++i) {
      co_await r.recv(kAnySource, 64, kAnyTag);
      ++received;
    }
  });
  for (int s = 1; s < 4; ++s) {
    world.launch_rank(s, [s](Rank& r) -> sim::Co<void> {
      co_await r.send(0, 64, /*tag=*/s * 10);
    });
  }
  engine.run();
  world.check_quiescent();
  EXPECT_EQ(received, 3);
}

TEST(MpiP2p, IsendIrecvWaitallOverlap) {
  const auto p = test_platform(4);
  sim::Engine engine(p);
  World world(engine, one_per_host(4));
  double done = -1;
  world.launch_rank(0, [&](Rank& r) -> sim::Co<void> {
    std::vector<Request> reqs;
    for (int d = 1; d < 4; ++d) reqs.push_back(r.isend(d, 50000, 0));
    co_await r.waitall(std::move(reqs));
    done = r.engine().now();
  });
  for (int d = 1; d < 4; ++d) {
    world.launch_rank(d, [](Rank& r) -> sim::Co<void> {
      co_await r.recv(0, 50000, 0);
    });
  }
  engine.run();
  // Eager isends complete after local buffer copies (150 kB at the 6 GB/s
  // memory/loopback speed) — the sender never waits for delivery.
  EXPECT_LT(done, 1e-3);
  EXPECT_GT(done, 0.0);
}

TEST(MpiP2p, WaitIsIdempotent) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  world.launch_rank(0, [](Rank& r) -> sim::Co<void> {
    auto req = r.isend(1, 10, 0);
    co_await r.wait(req);
    co_await r.wait(req);  // second wait returns immediately
    co_await r.wait(Request{});  // null request is a no-op
  });
  world.launch_rank(1, [](Rank& r) -> sim::Co<void> {
    co_await r.recv(0, 10, 0);
  });
  EXPECT_NO_THROW(engine.run());
}

TEST(MpiP2p, SelfSendUsesLoopback) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  double done = -1;
  world.launch_rank(0, [&](Rank& r) -> sim::Co<void> {
    auto req = r.isend(0, 1000, 0);
    co_await r.recv(0, 1000, 0);
    co_await r.wait(req);
    done = r.engine().now();
  });
  world.launch_rank(1, [](Rank&) -> sim::Co<void> { co_return; });
  engine.run();
  EXPECT_LT(done, 1e-4);  // loopback, not the cluster network
}

TEST(MpiP2p, FoldedRanksShareTheHostCpu) {
  const auto p = test_platform(2);
  sim::Engine engine(p);
  // 4 ranks folded onto 2 hosts (folding factor 2).
  World world(engine, {0, 0, 1, 1});
  std::vector<double> done(4, -1);
  world.launch([&](Rank& r) -> sim::Co<void> {
    co_await r.compute(1e9);
    done[static_cast<std::size_t>(r.rank())] = r.engine().now();
  });
  engine.run();
  for (const double d : done) EXPECT_DOUBLE_EQ(d, 2.0);  // 2x slowdown
}

TEST(MpiP2p, UnmatchedRecvDeadlocks) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  world.launch_rank(0, [](Rank& r) -> sim::Co<void> {
    co_await r.recv(1, 100, 0);  // never sent
  });
  EXPECT_THROW(engine.run(), SimError);
}

TEST(MpiP2p, QuiescenceCheckFlagsStrayMessage) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  world.launch_rank(0, [](Rank& r) -> sim::Co<void> {
    co_await r.send(1, 10, 0);  // eager: completes without a receiver
  });
  engine.run();
  EXPECT_THROW(world.check_quiescent(), SimError);
}

TEST(MpiP2p, InvalidRanksThrow) {
  const auto p = test_platform();
  sim::Engine engine(p);
  World world(engine, one_per_host(2));
  EXPECT_THROW(world.rank(5), SimError);
  EXPECT_THROW(world.rank(-1), SimError);
  EXPECT_THROW(World(engine, {}), SimError);
  EXPECT_THROW(World(engine, {99}), SimError);
}

TEST(MpiP2p, RingExampleMatchesFigure1) {
  // The paper's Figure 1: four processes, each computes 1 Mflop and passes
  // 1 MB around the ring.
  const auto p = test_platform(4);
  sim::Engine engine(p);
  World world(engine, one_per_host(4));
  world.launch([](Rank& r) -> sim::Co<void> {
    const int next = (r.rank() + 1) % r.size();
    const int prev = (r.rank() + r.size() - 1) % r.size();
    if (r.rank() == 0) {
      co_await r.compute(1e6);
      co_await r.send(next, 1000000);
      co_await r.recv(prev, 1000000);
    } else {
      co_await r.recv(prev, 1000000);
      co_await r.compute(1e6);
      co_await r.send(next, 1000000);
    }
  });
  engine.run();
  world.check_quiescent();
  // Critical path: 4 computes (1e-3 each) + 4 rendezvous 1 MB messages
  // (latency 3e-5 + ctrl 3e-5 + 1e6/1e8 each).
  const double message = 3e-5 + 3e-5 + 1e6 / 1e8;
  EXPECT_NEAR(engine.now(), 4 * (1e-3 + message), 1e-3);
}
