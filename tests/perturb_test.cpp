// PerturbSpec expansion: deterministic given (spec, platform, seed,
// replica), independent across replicas, stable across platform growth, and
// producing a well-formed transient-fault timeline.
#include <gtest/gtest.h>

#include <cmath>

#include "platform/cluster.hpp"
#include "replay/perturb.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::replay;

namespace {

plat::Platform make_cluster(int n) {
  plat::Platform platform;
  plat::build_cluster(platform, plat::bordereau_spec(n));
  return platform;
}

PerturbSpec noisy_spec() {
  PerturbSpec spec;
  spec.host_noise = 0.1;
  spec.link_bw_noise = 0.05;
  spec.link_lat_noise = 0.02;
  return spec;
}

bool same_fault(const FaultSpec& a, const FaultSpec& b) {
  return a.kind == b.kind && a.id == b.id && a.target == b.target &&
         a.compute_factor == b.compute_factor &&
         a.bandwidth_factor == b.bandwidth_factor &&
         a.latency_factor == b.latency_factor && a.at_time == b.at_time &&
         a.until_time == b.until_time && a.repeat == b.repeat &&
         a.period == b.period;
}

}  // namespace

TEST(PerturbTest, ExpansionIsDeterministic) {
  const auto platform = make_cluster(4);
  const auto spec = noisy_spec();
  PerturbDraw draw_a, draw_b;
  const auto a = expand_perturbation(spec, platform, 42, 3, &draw_a);
  const auto b = expand_perturbation(spec, platform, 42, 3, &draw_b);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(same_fault(a[i], b[i])) << "fault " << i;
  EXPECT_EQ(draw_a.host_factor, draw_b.host_factor);
  EXPECT_EQ(draw_a.link_bandwidth_factor, draw_b.link_bandwidth_factor);
  EXPECT_EQ(draw_a.link_latency_factor, draw_b.link_latency_factor);
}

TEST(PerturbTest, ReplicasAndSeedsAreIndependent) {
  const auto platform = make_cluster(4);
  const auto spec = noisy_spec();
  PerturbDraw r0, r1, other_seed;
  (void)expand_perturbation(spec, platform, 42, 0, &r0);
  (void)expand_perturbation(spec, platform, 42, 1, &r1);
  (void)expand_perturbation(spec, platform, 43, 0, &other_seed);
  EXPECT_NE(r0.host_factor, r1.host_factor);
  EXPECT_NE(r0.link_bandwidth_factor, r1.link_bandwidth_factor);
  EXPECT_NE(r0.host_factor, other_seed.host_factor);
}

// Per-resource streams: growing the platform must not change the factors
// already drawn for existing resources (no shared sequence that shifts when
// more hosts consume draws ahead of you).
TEST(PerturbTest, DrawsFormAStablePrefixAcrossPlatformGrowth) {
  const auto small = make_cluster(4);
  const auto large = make_cluster(8);
  const auto spec = noisy_spec();
  PerturbDraw a, b;
  (void)expand_perturbation(spec, small, 7, 2, &a);
  (void)expand_perturbation(spec, large, 7, 2, &b);
  ASSERT_LT(a.host_factor.size(), b.host_factor.size());
  for (std::size_t h = 0; h < a.host_factor.size(); ++h)
    EXPECT_DOUBLE_EQ(a.host_factor[h], b.host_factor[h]) << "host " << h;
  for (std::size_t l = 0; l < a.link_bandwidth_factor.size(); ++l)
    EXPECT_DOUBLE_EQ(a.link_bandwidth_factor[l], b.link_bandwidth_factor[l])
        << "link " << l;
}

TEST(PerturbTest, FactorsRespectTheClampRange) {
  const auto platform = make_cluster(16);
  PerturbSpec spec;
  spec.host_noise = 1.5;  // wild noise: clamping must kick in
  spec.min_factor = 0.5;
  spec.max_factor = 1.5;
  for (std::uint64_t r = 0; r < 8; ++r) {
    PerturbDraw draw;
    (void)expand_perturbation(spec, platform, 1, r, &draw);
    for (const double f : draw.host_factor) {
      EXPECT_GE(f, 0.5);
      EXPECT_LE(f, 1.5);
    }
  }
}

TEST(PerturbTest, ArrivalProcessProducesRecoverableFaultsInsideTheHorizon) {
  const auto platform = make_cluster(4);
  PerturbSpec spec;
  spec.fault_rate = 50.0;
  spec.fault_horizon = 1.0;
  spec.fault_duration = 0.01;
  spec.fault_severity = 0.25;
  const auto faults = expand_perturbation(spec, platform, 9, 0);
  ASSERT_FALSE(faults.empty());
  double previous = 0.0;
  for (const FaultSpec& f : faults) {
    EXPECT_GE(f.at_time, previous);  // arrivals are ordered
    EXPECT_LT(f.at_time, spec.fault_horizon);
    EXPECT_TRUE(f.has_recovery());
    EXPECT_GT(f.until_time, f.at_time);
    if (f.kind == FaultSpec::Kind::host)
      EXPECT_DOUBLE_EQ(f.compute_factor, 0.25);
    else
      EXPECT_DOUBLE_EQ(f.bandwidth_factor, 0.25);
    previous = f.at_time;
  }
}

TEST(PerturbTest, EmptySpecExpandsToNothing) {
  const auto platform = make_cluster(4);
  const PerturbSpec spec;
  EXPECT_TRUE(spec.empty());
  EXPECT_TRUE(expand_perturbation(spec, platform, 1, 0).empty());
}

TEST(PerturbTest, ValidationRejectsBadParameters) {
  PerturbSpec negative_noise;
  negative_noise.host_noise = -0.1;
  EXPECT_THROW(validate_perturbation(negative_noise, "test"), SimError);

  PerturbSpec bad_clamp;
  bad_clamp.host_noise = 0.1;
  bad_clamp.min_factor = 1.5;
  bad_clamp.max_factor = 0.5;
  EXPECT_THROW(validate_perturbation(bad_clamp, "test"), SimError);

  PerturbSpec no_duration;
  no_duration.fault_rate = 1.0;
  no_duration.fault_horizon = 1.0;
  no_duration.fault_duration = 0.0;
  try {
    validate_perturbation(no_duration, "scenario 'x'");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("scenario 'x'"), std::string::npos);
  }
}
