// Streaming-decode differential battery: the bounded-memory streaming
// decoder is a pure optimisation — every observable output must be
// BIT-IDENTICAL to the materialised decode of the same bytes. This file
// locks that contract down across codecs (text, binary, compact), engine
// modes (sequential, coroutine fast path, sharded solver), fault timelines,
// acquired NPB skeleton traces (LU, EP, FT, MG, CG), the synthetic
// generator, and the automatic-policy size heuristics; plus the streamed
// digest and the index-backed stats()/action_count() views.
//
// Carries the ctest label "stream"; the CI sanitizer jobs include it in
// their label filters (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "apps/npb_extra.hpp"
#include "platform/cluster.hpp"
#include "replay/scenario.hpp"
#include "trace/codec.hpp"
#include "trace/digest.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_set.hpp"

using namespace tir;
using namespace tir::replay;
using trace::Action;
using trace::ActionType;
using trace::DecodePolicy;
namespace fs = std::filesystem;

namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// Field-by-field bit identity of two replay reports: decode policy must not
// move a single bit anywhere — makespan, per-process finish times, engine
// counters (the simulated world is the same world), timed rows, failure
// text.
void expect_identical_reports(const ReplayReport& ref, const ReplayReport& r) {
  EXPECT_EQ(ref.status, r.status);
  EXPECT_TRUE(bit_equal(ref.sim_time, r.sim_time))
      << ref.sim_time << " vs " << r.sim_time;
  EXPECT_TRUE(bit_equal(ref.coverage, r.coverage));
  EXPECT_EQ(ref.error, r.error);
  EXPECT_EQ(ref.diagnostics, r.diagnostics);
  EXPECT_TRUE(bit_equal(ref.result.simulated_time, r.result.simulated_time));
  EXPECT_EQ(ref.result.actions_replayed, r.result.actions_replayed);
  ASSERT_EQ(ref.result.process_finish_times.size(),
            r.result.process_finish_times.size());
  for (std::size_t p = 0; p < ref.result.process_finish_times.size(); ++p)
    EXPECT_TRUE(bit_equal(ref.result.process_finish_times[p],
                          r.result.process_finish_times[p]))
        << "process " << p;
  const auto& se = ref.result.engine_stats;
  const auto& re = r.result.engine_stats;
  EXPECT_EQ(se.resumes, re.resumes);
  EXPECT_EQ(se.activities, re.activities);
  EXPECT_EQ(se.solver_calls, re.solver_calls);
  EXPECT_EQ(se.heap_events, re.heap_events);
  EXPECT_EQ(se.solver_vars_touched, re.solver_vars_touched);
  EXPECT_EQ(se.flows_rerated, re.flows_rerated);
  EXPECT_EQ(se.fast_path_inline, re.fast_path_inline);
  EXPECT_EQ(se.fast_path_ready, re.fast_path_ready);
  ASSERT_EQ(ref.result.timed_trace.size(), r.result.timed_trace.size());
  for (std::size_t i = 0; i < ref.result.timed_trace.size(); ++i) {
    EXPECT_EQ(ref.result.timed_trace[i].pid, r.result.timed_trace[i].pid);
    EXPECT_EQ(ref.result.timed_trace[i].action,
              r.result.timed_trace[i].action);
    EXPECT_TRUE(bit_equal(ref.result.timed_trace[i].start,
                          r.result.timed_trace[i].start));
    EXPECT_TRUE(bit_equal(ref.result.timed_trace[i].end,
                          r.result.timed_trace[i].end));
  }
}

std::vector<Action> drain(const trace::TraceSet& set, int pid) {
  std::vector<Action> out;
  const auto source = set.open(pid);
  while (const auto a = source->next()) out.push_back(*a);
  return out;
}

// Mixed traffic crossing every protocol boundary (eager + rendezvous rings,
// nonblocking pairs, the collective family) — the workload shape the
// parallel battery uses, reused here so stream-vs-materialise covers the
// same simulator paths.
std::vector<std::vector<Action>> mixed_actions(int nprocs, int rounds) {
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p)
    per[static_cast<std::size_t>(p)].push_back(
        {p, ActionType::comm_size, -1, 0, 0, nprocs});
  for (int r = 0; r < rounds; ++r) {
    const double bytes = r % 2 == 0 ? 16 * 1024.0 : 256 * 1024.0;
    for (int p = 0; p < nprocs; ++p) {
      auto& mine = per[static_cast<std::size_t>(p)];
      mine.push_back({p, ActionType::compute, -1, 2e5, 0, 0});
      if (p == 0) {
        mine.push_back({p, ActionType::send, 1, bytes, 0, 0});
        mine.push_back({p, ActionType::recv, nprocs - 1, 0, 0, 0});
      } else {
        mine.push_back({p, ActionType::recv, p - 1, 0, 0, 0});
        mine.push_back({p, ActionType::send, (p + 1) % nprocs, bytes, 0, 0});
      }
      mine.push_back({p, ActionType::isend, (p + 1) % nprocs, 1024, 0, 0});
      mine.push_back({p, ActionType::irecv, (p + nprocs - 1) % nprocs,
                      0, 0, 0});
      mine.push_back({p, ActionType::waitall, -1, 0, 0, 0});
      mine.push_back({p, ActionType::allreduce, -1, 4096, 1e4, 0});
      mine.push_back({p, ActionType::bcast, -1, 8192, 0, 0});
      mine.push_back({p, ActionType::barrier, -1, 0, 0, 0});
    }
  }
  return per;
}

class StreamTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tir_stream_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<fs::path> write_files(
      const std::vector<std::vector<Action>>& program,
      const std::string& codec_name) {
    const auto& codec = trace::codec_by_name(codec_name);
    std::vector<fs::path> files;
    for (int p = 0; p < static_cast<int>(program.size()); ++p) {
      files.push_back(dir_ / (codec_name + "_SG_process" +
                              std::to_string(p) + ".trace"));
      codec.encode(files.back(), program[static_cast<std::size_t>(p)], p);
    }
    return files;
  }

  ScenarioSpec cluster_spec(int nprocs) {
    auto platform = std::make_shared<plat::Platform>();
    const auto hosts =
        plat::build_cluster(*platform, plat::bordereau_spec(nprocs));
    ScenarioSpec spec;
    spec.name = "stream-battery";
    spec.platform = platform;
    spec.process_hosts = hosts;
    return spec;
  }

  // Replays the files under both decode policies and a given engine mode;
  // the streamed report must be bit-identical to the materialised one.
  void expect_replay_identical(const std::vector<fs::path>& files,
                               bool fast_path, int shards,
                               std::vector<replay::FaultSpec> faults = {}) {
    ReplayReport reports[2];
    const DecodePolicy policies[2] = {DecodePolicy::materialise,
                                      DecodePolicy::stream};
    for (int i = 0; i < 2; ++i) {
      ScenarioSpec spec = cluster_spec(static_cast<int>(files.size()));
      spec.traces = trace::TraceSet::per_process_files(
          files, trace::DecodeMode::strict, policies[i]);
      EXPECT_EQ(spec.traces.streaming(), i == 1);
      spec.faults = faults;
      spec.config.fast_path = fast_path;
      spec.config.shards = shards;
      spec.config.record_timed_trace = true;
      reports[i] = run_scenario_report(spec);
    }
    EXPECT_EQ(reports[0].status, ReplayStatus::ok) << reports[0].error;
    expect_identical_reports(reports[0], reports[1]);
  }

  fs::path dir_;
};

// Acquired NPB skeleton traces (the paper's TAU -> TI pipeline) written to
// real files; returns the per-process trace paths. The workdir lives in
// `dir_`, so TearDown cleans it up.
std::vector<fs::path> acquire_npb(const fs::path& dir, apps::AppDesc app,
                                  const std::string& label) {
  const fs::path workdir = dir / ("acq_" + label);
  fs::create_directories(workdir);
  acq::AcquisitionSpec spec;
  spec.app = std::move(app);
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  return acq::run_acquisition(spec).ti_files;
}

}  // namespace

// ---------------------------------------------------------------------------
// Cursor-level identity: streamed sequences, digests, stats.
// ---------------------------------------------------------------------------

TEST_F(StreamTraceTest, StreamedCursorsMatchMaterialisedEveryCodec) {
  const auto program = mixed_actions(6, 4);
  for (const char* codec : {"text", "binary", "compact"}) {
    SCOPED_TRACE(codec);
    const auto files = write_files(program, codec);
    const auto mat = trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, DecodePolicy::materialise);
    const auto str = trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, DecodePolicy::stream);
    EXPECT_FALSE(mat.streaming());
    ASSERT_TRUE(str.streaming());
    EXPECT_EQ(str.index_count(), files.size());

    ASSERT_EQ(mat.nprocs(), str.nprocs());
    for (int p = 0; p < mat.nprocs(); ++p) {
      EXPECT_EQ(drain(mat, p), drain(str, p)) << "pid " << p;
      EXPECT_EQ(mat.action_count(p), str.action_count(p)) << "pid " << p;
      EXPECT_EQ(mat.action_count(p),
                program[static_cast<std::size_t>(p)].size());
    }

    // One-pass streamed digest == materialised digest, bit for bit.
    EXPECT_EQ(trace::digest(mat), trace::digest(str)) << codec;

    // Index-backed stats: counters exact; float totals may differ only by
    // accumulation order (compact scales a body total by the repeat count).
    const auto ms = mat.stats();
    const auto ss = str.stats();
    EXPECT_EQ(ms.actions, ss.actions);
    EXPECT_EQ(ms.computes, ss.computes);
    EXPECT_EQ(ms.p2p_messages, ss.p2p_messages);
    EXPECT_EQ(ms.collectives, ss.collectives);
    EXPECT_NEAR(ms.total_flops, ss.total_flops, 1e-6 * ms.total_flops + 1e-9);
    EXPECT_NEAR(ms.total_bytes_sent, ss.total_bytes_sent,
                1e-6 * ms.total_bytes_sent + 1e-9);

    // A cursor re-opened after a full drain starts over (stateless opens).
    EXPECT_EQ(drain(str, 0), drain(str, 0));
  }
}

TEST_F(StreamTraceTest, MergedTextStreamsAndMatchesMaterialised) {
  // One merged file carrying all processes' streams, text codec: the
  // streaming index must pre-partition the byte ranges per pid.
  const auto program = mixed_actions(4, 3);
  std::vector<Action> interleaved;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (const auto& stream : program)
      if (i < stream.size()) {
        interleaved.push_back(stream[i]);
        any = true;
      }
    if (!any) break;
  }
  const fs::path file = dir_ / "merged.trace";
  trace::codec_by_name("text").encode(file, interleaved, 0);

  const auto mat = trace::TraceSet::merged_file(
      file, 4, trace::DecodeMode::strict, DecodePolicy::materialise);
  const auto str = trace::TraceSet::merged_file(
      file, 4, trace::DecodeMode::strict, DecodePolicy::stream);
  ASSERT_TRUE(str.streaming());
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(drain(mat, p), drain(str, p)) << "pid " << p;
    EXPECT_EQ(mat.action_count(p), str.action_count(p));
  }
  EXPECT_EQ(trace::digest(mat), trace::digest(str));
}

TEST_F(StreamTraceTest, MergedCompactFallsBackToMaterialise) {
  // Compact blocks interleave pids inside one repeat body, so a merged
  // compact file cannot be range-partitioned: the whole set must fall back
  // to materialised decode — silently, with identical results.
  const auto program = mixed_actions(4, 2);
  std::vector<Action> interleaved;
  for (const auto& stream : program)
    interleaved.insert(interleaved.end(), stream.begin(), stream.end());
  const fs::path file = dir_ / "merged.ctrace";
  trace::codec_by_name("compact").encode(file, interleaved, 0);

  const auto mat = trace::TraceSet::merged_file(
      file, 4, trace::DecodeMode::strict, DecodePolicy::materialise);
  const auto str = trace::TraceSet::merged_file(
      file, 4, trace::DecodeMode::strict, DecodePolicy::stream);
  EXPECT_FALSE(str.streaming());  // fell back
  for (int p = 0; p < 4; ++p) EXPECT_EQ(drain(mat, p), drain(str, p));
  EXPECT_EQ(trace::digest(mat), trace::digest(str));
}

// ---------------------------------------------------------------------------
// Replay identity across engine modes and fault timelines.
// ---------------------------------------------------------------------------

TEST_F(StreamTraceTest, ReplayIdenticalSequentialEveryCodec) {
  const auto program = mixed_actions(8, 3);
  for (const char* codec : {"text", "binary", "compact"}) {
    SCOPED_TRACE(codec);
    expect_replay_identical(write_files(program, codec),
                            /*fast_path=*/false, /*shards=*/1);
  }
}

TEST_F(StreamTraceTest, ReplayIdenticalFastPathAndShards) {
  const auto files = write_files(mixed_actions(8, 3), "compact");
  expect_replay_identical(files, /*fast_path=*/true, /*shards=*/1);
  expect_replay_identical(files, /*fast_path=*/false, /*shards=*/4);
  expect_replay_identical(files, /*fast_path=*/true, /*shards=*/4);
}

TEST_F(StreamTraceTest, ReplayIdenticalUnderFaultTimeline) {
  const auto files = write_files(mixed_actions(8, 4), "binary");
  replay::FaultSpec host;
  host.kind = replay::FaultSpec::Kind::host;
  host.target = "bordereau-1.bordeaux.grid5000.fr";
  host.compute_factor = 0.4;
  host.at_time = 0.001;
  replay::FaultSpec link;
  link.kind = replay::FaultSpec::Kind::link;
  link.target = "bordereau-backbone";
  link.bandwidth_factor = 0.2;
  link.at_time = 0.002;
  link.until_time = 0.004;
  expect_replay_identical(files, /*fast_path=*/true, /*shards=*/2,
                          {host, link});
}

TEST_F(StreamTraceTest, NpbSkeletonTracesStreamIdentically) {
  // All four extra NPB skeletons plus LU, through the real acquisition
  // pipeline: the on-disk TI traces replay bit-identically streamed.
  struct Kernel {
    const char* label;
    apps::AppDesc app;
  };
  apps::LuConfig lu;
  lu.cls = apps::NpbClass::S;
  lu.nprocs = 4;
  lu.iteration_scale = 0.0;  // clamped to one iteration
  apps::EpConfig ep;
  ep.cls = apps::NpbClass::S;
  ep.nprocs = 4;
  apps::FtConfig ft;
  ft.cls = apps::NpbClass::S;
  ft.nprocs = 4;
  ft.iteration_scale = 0.0;
  apps::MgConfig mg;
  mg.cls = apps::NpbClass::S;
  mg.nprocs = 4;
  mg.iteration_scale = 0.0;
  apps::CgConfig cg;
  cg.cls = apps::NpbClass::S;
  cg.nprocs = 4;
  cg.iteration_scale = 0.0;
  std::vector<Kernel> kernels;
  kernels.push_back({"lu", apps::make_lu_app(lu)});
  kernels.push_back({"ep", apps::make_ep_app(ep)});
  kernels.push_back({"ft", apps::make_ft_app(ft)});
  kernels.push_back({"mg", apps::make_mg_app(mg)});
  kernels.push_back({"cg", apps::make_cg_app(cg)});

  for (auto& kernel : kernels) {
    SCOPED_TRACE(kernel.label);
    const auto files = acquire_npb(dir_, std::move(kernel.app), kernel.label);
    ASSERT_EQ(files.size(), 4u);
    expect_replay_identical(files, /*fast_path=*/true, /*shards=*/2);

    const auto mat = trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, DecodePolicy::materialise);
    const auto str = trace::TraceSet::per_process_files(
        files, trace::DecodeMode::strict, DecodePolicy::stream);
    EXPECT_EQ(trace::digest(mat), trace::digest(str));
  }
}

// ---------------------------------------------------------------------------
// Synthetic generator and the automatic policy.
// ---------------------------------------------------------------------------

TEST_F(StreamTraceTest, SyntheticCompactStreamsWithoutMaterialising) {
  trace::SyntheticSpec spec;
  spec.pattern = trace::SyntheticPattern::cg;
  spec.nprocs = 4;
  spec.iterations = 2000;
  const auto files = trace::write_synthetic_traces(dir_ / "syn", spec);

  const auto str = trace::TraceSet::per_process_files(
      files, trace::DecodeMode::strict, DecodePolicy::stream);
  ASSERT_TRUE(str.streaming());
  EXPECT_EQ(str.stats().actions, trace::synthetic_actions(spec));
  // The whole 40k-action set is held as four tiny block indexes — orders of
  // magnitude below the materialised footprint.
  EXPECT_LT(str.resident_bytes(),
            trace::synthetic_actions(spec) * sizeof(Action) / 10);

  const auto mat = trace::TraceSet::per_process_files(
      files, trace::DecodeMode::strict, DecodePolicy::materialise);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(drain(mat, p), drain(str, p));
  EXPECT_EQ(trace::digest(mat), trace::digest(str));
  expect_replay_identical(files, /*fast_path=*/true, /*shards=*/1);
}

TEST_F(StreamTraceTest, AutomaticPolicySizesTheDecodePath) {
  // Small trace, automatic policy: materialise.
  trace::SyntheticSpec small;
  small.nprocs = 2;
  small.iterations = 100;
  const auto small_files =
      trace::write_synthetic_traces(dir_ / "small", small);
  const auto small_set = trace::TraceSet::per_process_files(small_files);
  EXPECT_FALSE(small_set.streaming());
  EXPECT_EQ(small_set.decode_policy(), DecodePolicy::automatic);

  // A compact trace whose *expanded* size crosses the action threshold
  // (the file itself is a few hundred bytes): automatic must stream — the
  // size heuristic reads the compact repeat counts, not the disk size.
  trace::SyntheticSpec big;
  big.nprocs = 2;
  big.iterations = 4'000'000;
  const auto big_files = trace::write_synthetic_traces(dir_ / "big", big);
  const auto big_set = trace::TraceSet::per_process_files(big_files);
  EXPECT_TRUE(big_set.streaming());
  // Index-backed views stay O(blocks): 2 * (1 + 4M * 5) actions, counted
  // without expanding anything.
  EXPECT_EQ(big_set.stats().actions, trace::synthetic_actions(big));
  EXPECT_EQ(big_set.action_count(0), 1 + big.iterations * 5);
}
