#include <gtest/gtest.h>

#include "platform/cluster.hpp"
#include "skampi/pingpong.hpp"
#include "skampi/pwl_fit.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::skampi;

namespace {

plat::Platform cluster_with(plat::PiecewiseNetModel model) {
  plat::Platform p;
  plat::ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = 2;
  spec.power = 1e9;
  spec.bandwidth = 1.25e8;
  spec.latency = 1e-5;
  spec.backbone_bandwidth = 1.25e9;
  spec.backbone_latency = 1e-5;
  build_cluster(p, spec);
  p.set_net_model(model);
  return p;
}

constexpr std::uint64_t kNoRendezvous = 1ull << 40;

}  // namespace

TEST(Skampi, PingpongTimesGrowWithSize) {
  const auto p = cluster_with(plat::PiecewiseNetModel::affine_model());
  const auto points = run_pingpong(p, 0, 1, {1, 1024, 65536, 1 << 20});
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GT(points[i].round_trip, points[i - 1].round_trip);
}

TEST(Skampi, OneByteRoundTripIsSixLatencies) {
  // 3 hops out + 3 hops back on an affine model (paper §5's "factor of six").
  const auto p = cluster_with(plat::PiecewiseNetModel::affine_model());
  const auto points = run_pingpong(p, 0, 1, {1}, kNoRendezvous);
  EXPECT_NEAR(points[0].round_trip, 6e-5, 1e-7);
  EXPECT_NEAR(estimate_link_latency(points, 3), 1e-5, 1e-7);
}

TEST(Skampi, LatencyEstimateRequiresOneByteProbe) {
  const auto p = cluster_with(plat::PiecewiseNetModel::affine_model());
  const auto points = run_pingpong(p, 0, 1, {8, 16});
  EXPECT_THROW(estimate_link_latency(points, 3), tir::Error);
  EXPECT_THROW(estimate_link_latency({}, 0), tir::Error);
}

TEST(Skampi, DefaultSizesCoverSegmentBoundaries) {
  const auto sizes = default_sizes();
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_GE(sizes.back(), 4u << 20);
  bool below_1k = false, mid = false, above_64k = false;
  for (const auto s : sizes) {
    below_1k |= s < 1024;
    mid |= (s >= 1024 && s < 64 * 1024);
    above_64k |= s >= 64 * 1024;
  }
  EXPECT_TRUE(below_1k && mid && above_64k);
}

TEST(Skampi, FitRecoversKnownModel) {
  // Generate measurements on a platform with known correction factors and
  // verify the best-fit recovers them.
  const plat::PiecewiseNetModel truth(
      1024, 64 * 1024,
      {plat::NetSegment{1.0, 1.10}, plat::NetSegment{1.35, 0.75},
       plat::NetSegment{2.50, 0.92}});
  const auto p = cluster_with(truth);
  const auto points = run_pingpong(p, 0, 1, default_sizes(), kNoRendezvous);
  // Nominal route: 3 links of 1e-5 s; bottleneck 1.25e8 B/s.
  const auto fit =
      fit_piecewise_model(points, 3e-5, 1.25e8, 1024, 64 * 1024);
  for (int seg = 0; seg < 3; ++seg) {
    const auto& fitted = fit.model.segments()[static_cast<std::size_t>(seg)];
    const auto& expected = truth.segments()[static_cast<std::size_t>(seg)];
    EXPECT_NEAR(fitted.latency_factor, expected.latency_factor,
                0.10 * expected.latency_factor)
        << "segment " << seg;
    EXPECT_NEAR(fitted.bandwidth_factor, expected.bandwidth_factor,
                0.10 * expected.bandwidth_factor)
        << "segment " << seg;
  }
}

TEST(Skampi, BoundarySearchPrefersTrueBoundaries) {
  const plat::PiecewiseNetModel truth(
      2048, 32 * 1024,
      {plat::NetSegment{1.0, 1.0}, plat::NetSegment{1.5, 0.6},
       plat::NetSegment{2.0, 0.9}});
  const auto p = cluster_with(truth);
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 1; s <= (1u << 20); s *= 2) {
    sizes.push_back(s);
    sizes.push_back(s + s / 2);
  }
  const auto points = run_pingpong(p, 0, 1, sizes, kNoRendezvous);
  const auto best = fit_piecewise_model_search(
      points, 3e-5, 1.25e8, {512, 1024, 2048, 4096, 16384, 32768, 131072});
  EXPECT_EQ(best.model.small_limit(), 2048u);
  EXPECT_EQ(best.model.large_limit(), 32768u);
}

TEST(Skampi, FitValidatesInputs) {
  EXPECT_THROW(fit_piecewise_model({}, 0.0, 1e8, 1024, 65536), tir::Error);
  EXPECT_THROW(fit_piecewise_model_search({}, 1e-5, 1e8, {1024}), tir::Error);
}

TEST(Skampi, SparseSegmentsFallBackToNominal) {
  const auto p = cluster_with(plat::PiecewiseNetModel::affine_model());
  // Only large messages: the two lower segments have no data.
  const auto points = run_pingpong(p, 0, 1, {1 << 20, 2 << 20, 4 << 20},
                                   kNoRendezvous);
  const auto fit = fit_piecewise_model(points, 3e-5, 1.25e8, 1024, 65536);
  EXPECT_DOUBLE_EQ(fit.model.segments()[0].latency_factor, 1.0);
  EXPECT_DOUBLE_EQ(fit.model.segments()[0].bandwidth_factor, 1.0);
  EXPECT_NEAR(fit.model.segments()[2].bandwidth_factor, 1.0, 0.05);
}
