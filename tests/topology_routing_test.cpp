// Route property tests for the topology zoo (topo.hpp): per-topology hop
// bounds against the analytic formulas, symmetry, and the no-duplicate-link
// invariant the max-min solver depends on (each link is one constraint; a
// route listing a link twice would double-count it).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "platform/graph_routing.hpp"
#include "platform/platform.hpp"
#include "platform/topo.hpp"
#include "support/error.hpp"

using namespace tir::plat;

namespace {

/// Asserts every (src, dst) route exists and repeats no link.
void expect_no_duplicate_links(const Platform& p,
                               const std::vector<HostId>& hosts) {
  for (const HostId a : hosts) {
    for (const HostId b : hosts) {
      if (a == b) continue;
      const Route r = p.route(a, b);
      const std::set<LinkId> unique(r.links.begin(), r.links.end());
      EXPECT_EQ(unique.size(), r.links.size())
          << p.host(a).name << " -> " << p.host(b).name;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dragonfly

TEST(TopologyDragonfly, MinimalRoutesStayWithinThreeSwitchHops) {
  Platform p;
  DragonflySpec spec;
  spec.groups = 5;
  spec.routers = 2;
  spec.globals = 2;
  spec.hosts = 1;
  const auto hosts = build_dragonfly(p, spec);
  ASSERT_EQ(hosts.size(), 10u);
  for (const HostId a : hosts)
    for (const HostId b : hosts) {
      if (a == b) continue;
      // <= local, global, local between switches, plus the two NICs.
      EXPECT_LE(p.route(a, b).links.size(), 5u);
      EXPECT_GE(p.route(a, b).links.size(), 2u);
    }
  expect_no_duplicate_links(p, hosts);
}

TEST(TopologyDragonfly, MinimalRoutingIsSymmetric) {
  Platform p;
  DragonflySpec spec;
  spec.groups = 5;
  spec.routers = 2;
  spec.globals = 2;
  spec.hosts = 1;
  const auto hosts = build_dragonfly(p, spec);
  for (const HostId a : hosts)
    for (const HostId b : hosts) {
      if (a >= b) continue;
      Route ab = p.route(a, b);
      Route ba = p.route(b, a);
      // Minimal routes cross the pair's unique global link through the same
      // two gateways either way: identical link sets. The latency sum runs
      // over the links in opposite order, so compare as doubles, not bits.
      std::sort(ab.links.begin(), ab.links.end());
      std::sort(ba.links.begin(), ba.links.end());
      EXPECT_EQ(ab.links, ba.links);
      EXPECT_DOUBLE_EQ(ab.latency, ba.latency);
    }
}

TEST(TopologyDragonfly, ValiantRoutesStayWithinFiveSwitchHops) {
  Platform p;
  DragonflySpec spec;
  spec.groups = 6;
  spec.routers = 3;
  spec.globals = 2;
  spec.hosts = 1;
  spec.routing = "valiant";
  const auto hosts = build_dragonfly(p, spec);
  ASSERT_EQ(hosts.size(), 18u);
  for (const HostId a : hosts)
    for (const HostId b : hosts) {
      if (a == b) continue;
      // <= local,global,local,global,local plus the two NICs.
      EXPECT_LE(p.route(a, b).links.size(), 7u);
    }
  expect_no_duplicate_links(p, hosts);
}

TEST(TopologyDragonfly, ValiantDetoursThroughAnIntermediateGroup) {
  Platform minimal_p, valiant_p;
  DragonflySpec spec;
  spec.groups = 6;
  spec.routers = 3;
  spec.globals = 2;
  spec.hosts = 1;
  const auto hosts = build_dragonfly(minimal_p, spec);
  spec.routing = "valiant";
  build_dragonfly(valiant_p, spec);

  // Valiant's defining property is in *global* hops, not total links (a
  // detour whose gateways line up can even use fewer locals than minimal):
  // cross-group routes cross exactly two global links instead of one.
  const auto global_hops = [&](const Platform& p, HostId a, HostId b) {
    std::size_t n = 0;
    for (const LinkId l : p.route(a, b).links)
      if (p.link(l).latency == spec.global_latency) ++n;
    return n;
  };
  const auto group_of = [&](HostId h) { return h / spec.routers; };
  for (const HostId a : hosts)
    for (const HostId b : hosts) {
      if (group_of(a) == group_of(b)) continue;
      EXPECT_EQ(global_hops(minimal_p, a, b), 1u);
      EXPECT_EQ(global_hops(valiant_p, a, b), 2u);
    }
}

TEST(TopologyDragonfly, GlobalLinkCountMatchesTheFormula) {
  Platform p;
  DragonflySpec spec;
  spec.groups = 9;
  spec.routers = 4;
  spec.globals = 2;
  spec.hosts = 2;
  const auto hosts = build_dragonfly(p, spec);
  ASSERT_EQ(hosts.size(), 72u);
  // locals: groups * C(routers, 2); globals: C(groups, 2); per host one NIC
  // and one loopback.
  const std::size_t locals = 9u * (4u * 3u / 2u);
  const std::size_t globals = 9u * 8u / 2u;
  EXPECT_EQ(p.link_count(), locals + globals + 2u * hosts.size());
}

TEST(TopologyDragonfly, RejectsUnderProvisionedGlobalSlots) {
  Platform p;
  DragonflySpec spec;
  spec.groups = 9;
  spec.routers = 2;
  spec.globals = 2;  // 2*2 < 8 pairs to reach
  EXPECT_THROW(build_dragonfly(p, spec), tir::Error);
}

// ---------------------------------------------------------------------------
// Fat-tree

TEST(TopologyFatTree, HopCountsMatchTheThreeTiers) {
  Platform p;
  FatTreeSpec spec;
  spec.k = 4;
  const auto hosts = build_fattree(p, spec);
  ASSERT_EQ(hosts.size(), 16u);  // k^3/4
  const int m = spec.k / 2;
  const auto pod_of = [&](HostId h) { return h / (m * m); };
  const auto edge_of = [&](HostId h) { return h / m; };
  for (const HostId a : hosts)
    for (const HostId b : hosts) {
      if (a == b) continue;
      const std::size_t n = p.route(a, b).links.size();
      if (edge_of(a) == edge_of(b))
        EXPECT_EQ(n, 2u);  // NIC, same edge switch, NIC
      else if (pod_of(a) == pod_of(b))
        EXPECT_EQ(n, 4u);  // up to an aggregation and back down
      else
        EXPECT_EQ(n, 6u);  // up to a core and back down
    }
  expect_no_duplicate_links(p, hosts);
}

TEST(TopologyFatTree, DmodkPathsAreMinimal) {
  FatTreeSpec spec;
  spec.k = 4;
  Platform dmodk_p;
  const auto hosts = build_fattree(dmodk_p, spec);
  spec.routing = "shortest";
  Platform bfs_p;
  build_fattree(bfs_p, spec);
  // D-mod-k picks *which* aggregation/core to cross, never a longer path:
  // hop counts must equal the BFS shortest ones everywhere.
  for (const HostId a : hosts)
    for (const HostId b : hosts)
      EXPECT_EQ(dmodk_p.route(a, b).links.size(),
                bfs_p.route(a, b).links.size());
}

TEST(TopologyFatTree, DmodkFunnelsADestinationThroughOneCore) {
  Platform p;
  FatTreeSpec spec;
  spec.k = 4;
  const auto hosts = build_fattree(p, spec);
  // Every cross-pod source reaches host 13 over the same two core links
  // (positions 2 and 3 of the 6-link route) — the D-mod-k property.
  const HostId dst = hosts[13];
  std::set<LinkId> down_links;  // core -> destination-pod aggregation
  for (const HostId src : hosts) {
    if (src / 4 == dst / 4) continue;  // same pod
    const Route r = p.route(src, dst);
    ASSERT_EQ(r.links.size(), 6u);
    down_links.insert(r.links[3]);
  }
  EXPECT_EQ(down_links.size(), 1u);
}

TEST(TopologyFatTree, RejectsOddRadix) {
  Platform p;
  FatTreeSpec spec;
  spec.k = 3;
  EXPECT_THROW(build_fattree(p, spec), tir::Error);
}

// ---------------------------------------------------------------------------
// Torus

TEST(TopologyTorus, DorHopCountMatchesTheRingDistanceSum) {
  Platform p;
  TorusSpec spec;
  spec.dims = {3, 4, 2};
  const auto hosts = build_torus(p, spec);
  ASSERT_EQ(hosts.size(), 24u);
  const auto coord = [&](HostId h, int stride, int size) {
    return (h / stride) % size;
  };
  for (const HostId a : hosts)
    for (const HostId b : hosts) {
      if (a == b) continue;
      std::size_t expect = 2;  // the two NICs
      int stride = 1;
      for (const int size : spec.dims) {
        const int d = std::abs(coord(a, stride, size) - coord(b, stride, size));
        expect += static_cast<std::size_t>(std::min(d, size - d));
        stride *= size;
      }
      EXPECT_EQ(p.route(a, b).links.size(), expect)
          << p.host(a).name << " -> " << p.host(b).name;
    }
  expect_no_duplicate_links(p, hosts);
}

TEST(TopologyTorus, DorIsHopSymmetricAndMinimal) {
  TorusSpec spec;
  spec.dims = {4, 3};
  Platform dor_p;
  const auto hosts = build_torus(dor_p, spec);
  spec.routing = "shortest";
  Platform bfs_p;
  build_torus(bfs_p, spec);
  for (const HostId a : hosts)
    for (const HostId b : hosts) {
      EXPECT_EQ(dor_p.route(a, b).links.size(),
                dor_p.route(b, a).links.size());
      EXPECT_EQ(dor_p.route(a, b).links.size(),
                bfs_p.route(a, b).links.size());
    }
}

TEST(TopologyTorus, SizeTwoRingHasOneCable) {
  Platform p;
  TorusSpec spec;
  spec.dims = {2};
  const auto hosts = build_torus(p, spec);
  ASSERT_EQ(hosts.size(), 2u);
  // One cable between the two switches + 2 NICs + 2 loopbacks.
  EXPECT_EQ(p.link_count(), 5u);
  EXPECT_EQ(p.route(hosts[0], hosts[1]).links.size(), 3u);
}

// ---------------------------------------------------------------------------
// GraphRouting construction invariants

TEST(GraphRoutingInvariants, RejectsDuplicateEdgesAndSelfLoops) {
  Platform p;
  GraphRouting g("test");
  const int a = g.add_switch("a");
  const int b = g.add_switch("b");
  const LinkId l = p.add_link("ab", 1e9, 1e-6);
  g.connect(a, b, l);
  EXPECT_THROW(g.connect(a, b, l), tir::Error);
  EXPECT_THROW(g.connect(b, a, l), tir::Error);
  EXPECT_THROW(g.connect(a, a, l), tir::Error);
}

TEST(GraphRoutingInvariants, RoutingBeforeFinalizeThrows) {
  Platform p;
  const JunctionId j = p.add_junction("fabric");
  auto g = std::make_shared<GraphRouting>("test");
  const int sw = g->add_switch("sw");
  const LinkId nic = p.add_link("h0_nic", 1e9, 1e-6);
  const HostId h0 = p.add_host("h0", 1e9, j, nic);
  const LinkId nic1 = p.add_link("h1_nic", 1e9, 1e-6);
  const HostId h1 = p.add_host("h1", 1e9, j, nic1);
  g->attach_host(h0, sw);
  g->attach_host(h1, sw);
  EXPECT_THROW(g->links(p, h0, h1), tir::Error);
  g->finalize();
  EXPECT_EQ(g->links(p, h0, h1).size(), 2u);  // the two NICs
  EXPECT_THROW(g->finalize(), tir::Error);
}

TEST(GraphRoutingInvariants, UnattachedHostThrows) {
  Platform p;
  const JunctionId j = p.add_junction("fabric");
  auto g = std::make_shared<GraphRouting>("test");
  const int sw = g->add_switch("sw");
  const LinkId nic0 = p.add_link("h0_nic", 1e9, 1e-6);
  const HostId h0 = p.add_host("h0", 1e9, j, nic0);
  const LinkId nic1 = p.add_link("h1_nic", 1e9, 1e-6);
  const HostId h1 = p.add_host("h1", 1e9, j, nic1);
  g->attach_host(h0, sw);  // h1 left unplaced
  g->finalize();
  p.set_route_provider(g);
  EXPECT_THROW(p.route(h0, h1), tir::Error);
}

TEST(GraphRoutingInvariants, DisconnectedSwitchesThrow) {
  Platform p;
  const JunctionId j = p.add_junction("fabric");
  auto g = std::make_shared<GraphRouting>("test");
  const int s0 = g->add_switch("s0");
  const int s1 = g->add_switch("s1");  // never connected
  const LinkId nic0 = p.add_link("h0_nic", 1e9, 1e-6);
  const HostId h0 = p.add_host("h0", 1e9, j, nic0);
  const LinkId nic1 = p.add_link("h1_nic", 1e9, 1e-6);
  const HostId h1 = p.add_host("h1", 1e9, j, nic1);
  g->attach_host(h0, s0);
  g->attach_host(h1, s1);
  g->finalize();
  EXPECT_THROW(g->links(p, h0, h1), tir::Error);
}
