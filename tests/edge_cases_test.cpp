// Edge cases and failure injection across the stack.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "mpisim/mpi.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "support/error.hpp"
#include "trace/binary_format.hpp"
#include "trace/text_format.hpp"
#include "trace/trace_set.hpp"

using namespace tir;
namespace fs = std::filesystem;

namespace {

plat::Platform small_platform(int nodes = 2) {
  plat::Platform p;
  plat::ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = nodes;
  build_cluster(p, spec);
  return p;
}

}  // namespace

TEST(EdgeCases, EmptyTraceReplaysToZero) {
  const auto p = small_platform();
  std::vector<std::vector<trace::Action>> per(2);  // no actions at all
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  replay::Replayer replayer(p, {0, 1}, traces);
  const auto result = replayer.run();
  EXPECT_DOUBLE_EQ(result.simulated_time, 0.0);
  EXPECT_EQ(result.actions_replayed, 0u);
}

TEST(EdgeCases, ZeroByteMessagesReplay) {
  const auto p = small_platform();
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(2);
  per[0] = {{0, ActionType::send, 1, 0, 0, 0}};
  per[1] = {{1, ActionType::recv, 0, 0, 0, 0}};
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  replay::Replayer replayer(p, {0, 1}, traces);
  const auto result = replayer.run();
  EXPECT_GT(result.simulated_time, 0.0);  // still pays latency
  EXPECT_LT(result.simulated_time, 1e-3);
}

TEST(EdgeCases, SingleProcessComputeOnlyTrace) {
  const auto p = small_platform(1);
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(1);
  for (int i = 0; i < 100; ++i)
    per[0].push_back({0, ActionType::compute, -1, 1e7, 0, 0});
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  replay::Replayer replayer(p, {0}, traces);
  EXPECT_NEAR(replayer.run().simulated_time, 100 * 1e7 / 1e9, 1e-9);
}

TEST(EdgeCases, SelfMessagingRank) {
  const auto p = small_platform();
  sim::Engine engine(p);
  mpi::World world(engine, {0});
  double done = -1;
  world.launch_rank(0, [&](mpi::Rank& r) -> sim::Co<void> {
    auto req = r.isend(0, 100000, 5);   // eager, to self
    co_await r.recv(0, 100000, 5);
    co_await r.wait(req);
    auto big = r.isend(0, 1 << 20, 6);  // rendezvous, to self
    co_await r.recv(0, 1 << 20, 6);
    co_await r.wait(big);
    done = r.engine().now();
  });
  engine.run();
  world.check_quiescent();
  EXPECT_GT(done, 0.0);
  EXPECT_LT(done, 0.01);  // loopback speed
}

TEST(EdgeCases, HugeVolumesDoNotOverflow) {
  const auto p = small_platform();
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(2);
  per[0] = {{0, ActionType::compute, -1, 1e15, 0, 0}};
  per[1] = {{1, ActionType::compute, -1, 1e15, 0, 0}};
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  replay::Replayer replayer(p, {0, 1}, traces);
  EXPECT_NEAR(replayer.run().simulated_time, 1e15 / 1e9, 1.0);
}

TEST(EdgeCases, CrlfTraceFilesParse) {
  const auto dir = fs::temp_directory_path() / "tir_crlf";
  fs::create_directories(dir);
  const auto file = dir / "crlf.trace";
  std::ofstream(file, std::ios::binary)
      << "p0 compute 5\r\np0 barrier\r\n";
  const auto actions = trace::read_all(file);
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].volume, 5.0);
  fs::remove_all(dir);
}

TEST(EdgeCases, NegativeTransferBytesBehaveAsZero) {
  const auto p = small_platform();
  sim::Engine engine(p);
  double done = -1;
  engine.spawn("w", 0, [&](sim::Process&) -> sim::Task {
    co_await engine.wait(engine.transfer_async(0, 1, -5.0));
    done = engine.now();
  });
  engine.run();
  EXPECT_GE(done, 0.0);
  EXPECT_LT(done, 1e-3);
}

TEST(EdgeCases, TruncatedBinaryTraceMidRecordThrows) {
  const auto dir = fs::temp_directory_path() / "tir_trunc";
  fs::create_directories(dir);
  const auto file = dir / "t.btrace";
  {
    trace::BinaryTraceWriter writer(file, 0);
    writer.write({0, trace::ActionType::send, 1, 163840, 0, 0});
  }
  // Chop the final bytes off.
  const auto size = fs::file_size(file);
  fs::resize_file(file, size - 2);
  trace::BinaryTraceReader reader(file);
  EXPECT_THROW(
      {
        while (reader.next()) {
        }
      },
      tir::ParseError);
  fs::remove_all(dir);
}

TEST(EdgeCases, TruncatedBinaryTraceSalvagesInLenientMode) {
  const auto dir = fs::temp_directory_path() / "tir_trunc_lenient";
  fs::create_directories(dir);
  const auto file = dir / "t.btrace";
  {
    trace::BinaryTraceWriter writer(file, 0);
    writer.write({0, trace::ActionType::compute, -1, 1e6, 0, 0});
    writer.write({0, trace::ActionType::send, 1, 163840, 0, 0});
  }
  fs::resize_file(file, fs::file_size(file) - 2);  // chop mid-record

  // Strict decode refuses the file outright.
  const auto strict = trace::TraceSet::per_process_files({file});
  EXPECT_THROW(strict.stats(), ParseError);

  // Lenient decode keeps the clean prefix and reports partial coverage.
  const auto lenient = trace::TraceSet::per_process_files(
      {file}, trace::DecodeMode::lenient);
  EXPECT_EQ(lenient.actions(0).size(), 1u);  // first record survived
  EXPECT_LT(lenient.coverage(), 1.0);
  EXPECT_GT(lenient.coverage(), 0.0);
  const auto salvage = lenient.salvage_report();
  ASSERT_EQ(salvage.size(), 1u);
  EXPECT_FALSE(salvage[0].complete);
  EXPECT_FALSE(salvage[0].error.empty());
  fs::remove_all(dir);
}

TEST(EdgeCases, RecvSmallerThanSendStillMatches) {
  // MPI semantics: matching ignores sizes; our model trusts the sender's.
  const auto p = small_platform();
  sim::Engine engine(p);
  mpi::World world(engine, {0, 1});
  std::uint64_t got = 0;
  world.launch_rank(0, [](mpi::Rank& r) -> sim::Co<void> {
    co_await r.send(1, 5000, 0);
  });
  world.launch_rank(1, [&](mpi::Rank& r) -> sim::Co<void> {
    auto req = r.irecv(0, 10, 0);
    co_await r.wait(req);
    got = req->bytes;
  });
  engine.run();
  EXPECT_EQ(got, 5000u);
}

TEST(EdgeCases, ManySmallActionsStayDeterministic) {
  const auto run_once = [] {
    const auto p = small_platform(4);
    sim::Engine engine(p);
    mpi::World world(engine, {0, 1, 2, 3});
    world.launch([](mpi::Rank& r) -> sim::Co<void> {
      for (int i = 0; i < 200; ++i) {
        const int peer = r.rank() ^ 1;
        if (r.rank() < peer) {
          co_await r.send(peer, 64, i);
          co_await r.recv(peer, 64, i);
        } else {
          co_await r.recv(peer, 64, i);
          co_await r.send(peer, 64, i);
        }
        if (i % 50 == 0) co_await r.barrier();
      }
    });
    engine.run();
    return engine.now();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(EdgeCases, ReplayCommSizeOnlyTrace) {
  const auto p = small_platform();
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(2);
  per[0] = {{0, ActionType::comm_size, -1, 0, 0, 2}};
  per[1] = {{1, ActionType::comm_size, -1, 0, 0, 2}};
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  replay::Replayer replayer(p, {0, 1}, traces);
  EXPECT_DOUBLE_EQ(replayer.run().simulated_time, 0.0);
}

TEST(EdgeCases, MismatchedPidInsideTraceThrows) {
  const auto p = small_platform();
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(2);
  per[0] = {{1, ActionType::barrier, -1, 0, 0, 0}};  // claims to be p1
  per[1] = {{1, ActionType::barrier, -1, 0, 0, 0}};
  const auto traces = trace::TraceSet::in_memory(std::move(per));
  replay::Replayer replayer(p, {0, 1}, traces);
  EXPECT_THROW(replayer.run(), tir::SimError);
}
