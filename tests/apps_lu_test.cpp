#include <gtest/gtest.h>

#include <cmath>
#include "apps/lu.hpp"
#include "apps/ring.hpp"
#include "apps/stencil.hpp"
#include "mpisim/mpi.hpp"
#include "platform/cluster.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::apps;

namespace {

double run_app(const AppDesc& app, int nodes, int folding = 1) {
  plat::Platform p;
  plat::ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = nodes;
  spec.power = 1e9;
  spec.bandwidth = 1.25e8;
  spec.latency = 1e-5;
  spec.backbone_bandwidth = 1.25e9;
  spec.backbone_latency = 1e-5;
  build_cluster(p, spec);
  sim::Engine engine(p);
  std::vector<int> hosts;
  for (int r = 0; r < app.nprocs; ++r) hosts.push_back((r / folding) % nodes);
  mpi::World world(engine, hosts);
  world.launch([&app](mpi::Rank& r) -> sim::Co<void> {
    co_await app.body(r);
  });
  engine.run();
  world.check_quiescent();
  return engine.now();
}

}  // namespace

TEST(LuApp, ClassTableMatchesNpbSpec) {
  EXPECT_EQ(lu_grid_size(NpbClass::S), 12);
  EXPECT_EQ(lu_grid_size(NpbClass::W), 33);
  EXPECT_EQ(lu_grid_size(NpbClass::A), 64);
  EXPECT_EQ(lu_grid_size(NpbClass::B), 102);
  EXPECT_EQ(lu_grid_size(NpbClass::C), 162);
  EXPECT_EQ(lu_grid_size(NpbClass::D), 408);
  EXPECT_EQ(lu_iterations(NpbClass::S), 50);
  EXPECT_EQ(lu_iterations(NpbClass::B), 250);
  EXPECT_EQ(lu_iterations(NpbClass::D), 300);
}

TEST(LuApp, ClassDComparesToClassCAsInThePaper) {
  // Paper §6.1: "a class D instance corresponds to approximately 20 times
  // as much work and a data set almost 16 [times] as large as a class C".
  const double work_c = std::pow(lu_grid_size(NpbClass::C), 3) *
                        lu_iterations(NpbClass::C);
  const double work_d = std::pow(lu_grid_size(NpbClass::D), 3) *
                        lu_iterations(NpbClass::D);
  EXPECT_NEAR(work_d / work_c, 19.2, 1.5);
  const double data_c = std::pow(lu_grid_size(NpbClass::C), 3);
  const double data_d = std::pow(lu_grid_size(NpbClass::D), 3);
  EXPECT_NEAR(data_d / data_c, 16.0, 0.3);
}

TEST(LuApp, ClassAFlopCountMatchesPublishedOperations) {
  // NPB reports ~119e9 *algorithmic* operations for a class A run; the
  // traces record the PAPI_FP_OPS counter, which overcounts by a fixed
  // factor (see lu.cpp).
  const double algo_total = lu_algorithmic_flops_per_point_iteration() *
                            64.0 * 64 * 64 * 250;
  EXPECT_NEAR(algo_total, 119.3e9, 2e9);

  LuConfig cfg;
  cfg.cls = NpbClass::A;
  cfg.nprocs = 4;
  const LuShape shape = lu_shape(cfg);
  EXPECT_NEAR(shape.total_flops,
              algo_total * lu_counter_overcount_factor(), 3e9);
}

TEST(LuApp, CountedRateReproducesThePapersCalibration) {
  // Consistency of the whole story: LU's average efficiency (~0.225 of the
  // 5.2 Gflop/s peak) must land near the 1.17 Gflop/s per-process rate the
  // paper's Figure 5 instantiates, and class B on 64 processes must then
  // need roughly the paper's 20.7 s (Table 2, mode R).
  LuConfig cfg;
  cfg.cls = NpbClass::B;
  cfg.nprocs = 64;
  const LuShape shape = lu_shape(cfg);
  const double per_rank_flops = shape.total_flops / 64.0;
  const double compute_seconds = per_rank_flops / 1.17e9;
  EXPECT_GT(compute_seconds, 12.0);
  EXPECT_LT(compute_seconds, 25.0);
}

TEST(LuApp, ProcessGridIsNpbShaped) {
  LuConfig cfg;
  cfg.cls = NpbClass::A;
  cfg.nprocs = 8;
  const LuShape s8 = lu_shape(cfg);
  EXPECT_EQ(s8.xdim * s8.ydim, 8);
  EXPECT_EQ(s8.xdim, 2);  // xdim = 2^floor(log2(8)/2)
  EXPECT_EQ(s8.ydim, 4);
  cfg.nprocs = 64;
  const LuShape s64 = lu_shape(cfg);
  EXPECT_EQ(s64.xdim, 8);
  EXPECT_EQ(s64.ydim, 8);
}

TEST(LuApp, ActionCountsScaleWithClassAsInTable3) {
  // Paper Table 3: class C holds ~1.6x the actions of class B at equal
  // process count (ratio of grid heights: both run 250 iterations and the
  // per-plane action count is size-independent; planes scale with n).
  LuConfig b;
  b.cls = NpbClass::B;
  b.nprocs = 16;
  LuConfig c;
  c.cls = NpbClass::C;
  c.nprocs = 16;
  const double ratio = static_cast<double>(lu_shape(c).total_actions) /
                       static_cast<double>(lu_shape(b).total_actions);
  EXPECT_NEAR(ratio, 1.6, 0.1);
}

TEST(LuApp, ActionCountsRoughlyDoubleWithProcesses) {
  // Paper Table 3: actions grow close to linearly in the process count
  // (8 -> 16 procs: 2.03M -> 4.87M for class B).
  LuConfig cfg;
  cfg.cls = NpbClass::B;
  cfg.nprocs = 8;
  const auto a8 = lu_shape(cfg).total_actions;
  cfg.nprocs = 16;
  const auto a16 = lu_shape(cfg).total_actions;
  const double growth = static_cast<double>(a16) / static_cast<double>(a8);
  EXPECT_GT(growth, 1.6);
  EXPECT_LT(growth, 2.6);
}

TEST(LuApp, Table3ActionMagnitudesAreInTheRightBallpark) {
  // Paper Table 3 reports 22.73M actions for class B on 64 processes and
  // 36.17M for class C on 64. Our skeleton's granularity differs slightly
  // from TAU's (they log a few extra events per MPI call), so accept the
  // right order of magnitude.
  LuConfig cfg;
  cfg.cls = NpbClass::B;
  cfg.nprocs = 64;
  const double actions_b = static_cast<double>(lu_shape(cfg).total_actions);
  EXPECT_GT(actions_b, 8e6);
  EXPECT_LT(actions_b, 40e6);
  cfg.cls = NpbClass::C;
  const double actions_c = static_cast<double>(lu_shape(cfg).total_actions);
  EXPECT_GT(actions_c / actions_b, 1.4);
}

TEST(LuApp, RunsToCompletionOnSmallInstance) {
  LuConfig cfg;
  cfg.cls = NpbClass::S;
  cfg.nprocs = 4;
  cfg.iteration_scale = 0.1;  // 5 iterations
  const double t = run_app(make_lu_app(cfg), 4);
  EXPECT_GT(t, 0.0);
}

TEST(LuApp, MoreProcessesRunFaster) {
  LuConfig cfg;
  cfg.cls = NpbClass::W;
  cfg.iteration_scale = 0.05;
  cfg.nprocs = 2;
  const double t2 = run_app(make_lu_app(cfg), 2);
  cfg.nprocs = 8;
  const double t8 = run_app(make_lu_app(cfg), 8);
  EXPECT_LT(t8, t2);
  // ...but not perfectly: the wavefront serialises part of the sweep.
  EXPECT_GT(t8, t2 / 4.0 * 0.8);
}

TEST(LuApp, FoldingSlowsExecutionRoughlyLinearly) {
  // Table 2's observation: running F-x folds the compute onto fewer CPUs
  // and the execution time grows roughly linearly with x.
  // Needs a compute-dominated instance (class W), like the paper's B/C runs.
  LuConfig cfg;
  cfg.cls = NpbClass::W;
  cfg.nprocs = 8;
  cfg.iteration_scale = 0.02;
  const double regular = run_app(make_lu_app(cfg), 8, 1);
  const double folded2 = run_app(make_lu_app(cfg), 4, 2);
  const double folded4 = run_app(make_lu_app(cfg), 2, 4);
  EXPECT_GT(folded2 / regular, 1.5);
  EXPECT_LT(folded2 / regular, 2.6);
  EXPECT_GT(folded4 / regular, 2.8);
  EXPECT_LT(folded4 / regular, 5.2);
}

TEST(LuApp, FlatEfficiencyIsDeterministicallyFaster) {
  // Class W on 2 ranks is compute-dominated, so tripling the flop rate
  // should come close to tripling the speed.
  LuConfig cfg;
  cfg.cls = NpbClass::W;
  cfg.nprocs = 2;
  cfg.iteration_scale = 0.02;
  cfg.flat_efficiency = true;
  cfg.flat_rate_fraction = 0.9;
  const double fast = run_app(make_lu_app(cfg), 2);
  cfg.flat_rate_fraction = 0.3;
  const double slow = run_app(make_lu_app(cfg), 2);
  EXPECT_GT(slow / fast, 2.2);
  EXPECT_LT(slow / fast, 3.1);
}

TEST(LuApp, RejectsInvalidConfigs) {
  LuConfig cfg;
  cfg.nprocs = 6;  // not a power of two
  EXPECT_THROW(make_lu_app(cfg), tir::Error);
  EXPECT_THROW(lu_shape(cfg), tir::Error);
  cfg.nprocs = 1024;
  cfg.cls = NpbClass::S;  // 12^2 = 144 < 1024 ranks
  EXPECT_THROW(make_lu_app(cfg), tir::Error);
}

TEST(LuApp, ClassParsingRoundTrips) {
  for (const auto cls : {NpbClass::S, NpbClass::W, NpbClass::A, NpbClass::B,
                         NpbClass::C, NpbClass::D, NpbClass::E})
    EXPECT_EQ(npb_class_from_string(to_string(cls)), cls);
  EXPECT_THROW(npb_class_from_string("X"), tir::ParseError);
  EXPECT_THROW(npb_class_from_string("BB"), tir::ParseError);
}

TEST(RingApp, MatchesFigure1Structure) {
  const AppDesc app = make_ring_app(RingConfig{});
  EXPECT_EQ(app.nprocs, 4);
  const double t = run_app(app, 4);
  EXPECT_GT(t, 0.0);
  EXPECT_THROW(make_ring_app(RingConfig{.nprocs = 1}), tir::Error);
}

TEST(RingApp, MultipleRoundsScaleTime) {
  RingConfig cfg;
  const double t1 = run_app(make_ring_app(cfg), 4);
  cfg.rounds = 3;
  const double t3 = run_app(make_ring_app(cfg), 4);
  EXPECT_NEAR(t3 / t1, 3.0, 0.2);
}

TEST(StencilApp, RunsAndScales) {
  StencilConfig cfg;
  cfg.nprocs = 4;
  cfg.grid = 256;
  cfg.iterations = 20;
  const double t4 = run_app(make_stencil_app(cfg), 4);
  cfg.nprocs = 16;
  const double t16 = run_app(make_stencil_app(cfg), 16);
  EXPECT_LT(t16, t4);
}

TEST(StencilApp, RejectsBadConfig) {
  StencilConfig cfg;
  cfg.nprocs = 0;
  EXPECT_THROW(make_stencil_app(cfg), tir::Error);
  cfg.nprocs = 64;
  cfg.grid = 8;
  EXPECT_THROW(make_stencil_app(cfg), tir::Error);
}
