#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

using tir::RunningStats;

TEST(Stats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(tir::relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(tir::relative_error(9.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(tir::relative_error(5.0, 0.0), 0.0);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(tir::median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(tir::median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(tir::median({}), 0.0);
}

TEST(Stats, LeastSquaresRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 0.5 * i);
  }
  const auto fit = tir::least_squares(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(fit.sse, 0.0, 1e-9);
}

TEST(Stats, LeastSquaresRejectsDegenerateInput) {
  EXPECT_THROW(tir::least_squares({1.0}, {2.0}), tir::Error);
  EXPECT_THROW(tir::least_squares({1.0, 1.0}, {2.0, 3.0}), tir::Error);
}
