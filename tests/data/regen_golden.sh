#!/bin/sh
# Regenerate the committed exporter golden files after an *intentional*
# format change. Run from the repo root with a configured build directory
# (default: build). The golden comparison in obs_export_test will fail
# until the new bytes are committed alongside the exporter change.
set -eu
build=${1:-build}
TIR_REGEN_GOLDEN=1 "$build/tests/test_obs" \
    --gtest_filter='ObsExportTest.ChromeJsonMatchesGolden'
echo "regenerated: $(dirname "$0")/lu_s4_chrome_golden.json"
