#include <gtest/gtest.h>

#include "platform/cluster.hpp"
#include "platform/deployment.hpp"
#include "platform/platform_file.hpp"
#include "simkern/engine.hpp"
#include "support/error.hpp"

using namespace tir::plat;

namespace {

// Verbatim shape of the paper's Figure 5.
const char* kFig5 = R"(<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
  <AS id="AS_mysite" routing="Full">
    <cluster id="AS_mycluster"
      prefix="mycluster-" suffix=".mysite.fr"
      radical="0-3" power="1.17E9"
      bw="1.25E8" lat="16.67E-6"
      bb_bw="1.25E9" bb_lat="16.67E-6"/>
  </AS>
</platform>
)";

// Verbatim shape of the paper's Figure 6.
const char* kFig6 = R"(<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
  <process host="mycluster-0.mysite.fr" function="p0"/>
  <process host="mycluster-1.mysite.fr" function="p1"/>
  <process host="mycluster-2.mysite.fr" function="p2"/>
  <process host="mycluster-3.mysite.fr" function="p3"/>
</platform>
)";

}  // namespace

TEST(PlatformFile, LoadsFigure5) {
  const Platform p = load_platform_text(kFig5);
  EXPECT_EQ(p.host_count(), 4u);
  const HostId h0 = p.host_by_name("mycluster-0.mysite.fr");
  EXPECT_DOUBLE_EQ(p.host(h0).power, 1.17e9);
  const HostId h3 = p.host_by_name("mycluster-3.mysite.fr");
  const Route r = p.route(h0, h3);
  EXPECT_EQ(r.links.size(), 3u);
  EXPECT_NEAR(r.latency, 3 * 16.67e-6, 1e-12);
}

TEST(PlatformFile, SupportsSparseRadicals) {
  Platform p = load_platform_text(
      "<platform><AS id='a'><cluster prefix='n-' radical='0-1,5,7-8' "
      "power='1G' bw='125MBps' lat='10us'/></AS></platform>");
  EXPECT_EQ(p.host_count(), 5u);
  EXPECT_TRUE(p.find_host("n-5").has_value());
  EXPECT_FALSE(p.find_host("n-6").has_value());
}

TEST(PlatformFile, TwoClustersJoinAcrossWan) {
  Platform p = load_platform_text(
      "<platform><AS id='grid'>"
      "<backbone bw='1.25E9' lat='5ms'/>"
      "<cluster prefix='a-' radical='0-1' power='1G' bw='125M' lat='10us'/>"
      "<cluster prefix='b-' radical='0-1' power='1G' bw='125M' lat='10us'/>"
      "</AS></platform>");
  const Route wan = p.route(p.host_by_name("a-0"), p.host_by_name("b-0"));
  const Route local = p.route(p.host_by_name("a-0"), p.host_by_name("a-1"));
  EXPECT_GT(wan.latency, 4e-3);
  EXPECT_LT(local.latency, 1e-3);
}

TEST(PlatformFile, RejectsMalformedInput) {
  EXPECT_THROW(load_platform_text("<notplatform/>"), tir::ParseError);
  EXPECT_THROW(load_platform_text("<platform><AS id='x'/></platform>"),
               tir::ParseError);
  EXPECT_THROW(load_platform_text(
                   "<platform><AS id='x'><cluster prefix='n' radical='3-1' "
                   "power='1G' bw='1M' lat='1us'/></AS></platform>"),
               tir::ParseError);
}

TEST(PlatformFile, ClusterToXmlRoundTrips) {
  ClusterSpec spec = bordereau_spec(8);
  const std::string xml = cluster_to_xml(spec, "AS_bordeaux");
  const Platform p = load_platform_text(xml);
  EXPECT_EQ(p.host_count(), 8u);
  const HostId h = p.host_by_name("bordereau-0.bordeaux.grid5000.fr");
  EXPECT_DOUBLE_EQ(p.host(h).power, 1.17e9);
}

TEST(Deployment, LoadsFigure6) {
  const Deployment d = load_deployment_text(kFig6);
  ASSERT_EQ(d.processes.size(), 4u);
  EXPECT_EQ(d.processes[0].function, "p0");
  EXPECT_EQ(d.processes[3].host, "mycluster-3.mysite.fr");
}

TEST(Deployment, ResolvesAgainstPlatform) {
  const Platform p = load_platform_text(kFig5);
  const Deployment d = load_deployment_text(kFig6);
  const auto hosts = d.resolve(p);
  ASSERT_EQ(hosts.size(), 4u);
  EXPECT_EQ(p.host(hosts[2]).name, "mycluster-2.mysite.fr");
}

TEST(Deployment, ParsesPerProcessArguments) {
  const Deployment d = load_deployment_text(
      "<platform><process host='h' function='p1'>"
      "<argument value='SG_process1.trace'/></process></platform>");
  ASSERT_EQ(d.processes.size(), 1u);
  ASSERT_EQ(d.processes[0].args.size(), 1u);
  EXPECT_EQ(d.processes[0].args[0], "SG_process1.trace");
}

TEST(Deployment, BlockMappingFoldsProcesses) {
  Platform p;
  ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = 4;
  const auto hosts = build_cluster(p, spec);
  const Deployment d = Deployment::block(p, hosts, 8);
  ASSERT_EQ(d.processes.size(), 8u);
  // Folding factor 2: p0, p1 on n-0; p2, p3 on n-1; ...
  EXPECT_EQ(d.processes[0].host, "n-0");
  EXPECT_EQ(d.processes[1].host, "n-0");
  EXPECT_EQ(d.processes[2].host, "n-1");
  EXPECT_EQ(d.processes[7].host, "n-3");
}

TEST(Deployment, RoundRobinMapping) {
  Platform p;
  ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = 3;
  const auto hosts = build_cluster(p, spec);
  const Deployment d = Deployment::round_robin(p, hosts, 5);
  EXPECT_EQ(d.processes[0].host, "n-0");
  EXPECT_EQ(d.processes[3].host, "n-0");
  EXPECT_EQ(d.processes[4].host, "n-1");
}

TEST(Deployment, ToXmlRoundTrips) {
  Deployment d;
  d.processes.push_back({"p0", "h0", {"SG_process0.trace"}});
  d.processes.push_back({"p1", "h1", {}});
  const Deployment back = load_deployment_text(d.to_xml());
  ASSERT_EQ(back.processes.size(), 2u);
  EXPECT_EQ(back.processes[0].args.at(0), "SG_process0.trace");
  EXPECT_EQ(back.processes[1].host, "h1");
}

TEST(Deployment, EmptyDeploymentThrows) {
  EXPECT_THROW(load_deployment_text("<platform/>"), tir::ParseError);
}

TEST(PlatformFile, ExplicitHostLinkRouteElements) {
  // SimGrid's routing="Full" shape: hosts, links and explicit routes.
  const Platform p = load_platform_text(R"(
    <platform version="3">
      <AS id="AS0" routing="Full">
        <host id="alpha" power="2E9"/>
        <host id="beta"  power="1E9"/>
        <host id="gamma" power="1E9"/>
        <link id="l1" bandwidth="1.25E8" latency="50us"/>
        <link id="l2" bandwidth="2.5E8"  latency="10us"/>
        <route src="alpha" dst="beta"><link_ctn id="l1"/></route>
        <route src="beta" dst="gamma">
          <link_ctn id="l1"/><link_ctn id="l2"/>
        </route>
      </AS>
    </platform>)");
  EXPECT_EQ(p.host_count(), 3u);
  EXPECT_DOUBLE_EQ(p.host(p.host_by_name("alpha")).power, 2e9);

  const Route ab = p.route(p.host_by_name("alpha"), p.host_by_name("beta"));
  ASSERT_EQ(ab.links.size(), 1u);
  EXPECT_DOUBLE_EQ(ab.latency, 50e-6);

  // Reverse direction mirrors the route.
  const Route ba = p.route(p.host_by_name("beta"), p.host_by_name("alpha"));
  EXPECT_EQ(ba.links.size(), 1u);

  const Route bg = p.route(p.host_by_name("beta"), p.host_by_name("gamma"));
  EXPECT_EQ(bg.links.size(), 2u);
  EXPECT_DOUBLE_EQ(bg.min_bandwidth, 1.25e8);

  // No alpha<->gamma route was declared: explicit platforms do not fall
  // back to tree routing.
  EXPECT_THROW(p.route(p.host_by_name("alpha"), p.host_by_name("gamma")),
               tir::Error);
  // Self routes still use the loopback.
  EXPECT_EQ(
      p.route(p.host_by_name("alpha"), p.host_by_name("alpha")).links.size(),
      1u);
}

TEST(PlatformFile, ExplicitPlatformRejectsBadInput) {
  EXPECT_THROW(load_platform_text(
                   "<platform><AS id='x'><host id='a' power='1E9'/>"
                   "<route src='a' dst='a'/></AS></platform>"),
               tir::ParseError);
  EXPECT_THROW(load_platform_text(
                   "<platform><AS id='x'><host id='a' power='1E9'/>"
                   "<host id='b' power='1E9'/>"
                   "<route src='a' dst='b'><link_ctn id='nope'/></route>"
                   "</AS></platform>"),
               tir::ParseError);
  EXPECT_THROW(load_platform_text(
                   "<platform><AS id='x'><link id='l' bandwidth='1E8'/>"
                   "</AS></platform>"),
               tir::ParseError);
}

TEST(PlatformFile, ExplicitPlatformDrivesTheEngine) {
  const Platform p = load_platform_text(R"(
    <platform version="3">
      <AS id="AS0" routing="Full">
        <host id="a" power="1E9"/>
        <host id="b" power="1E9"/>
        <link id="l" bandwidth="1E8" latency="0"/>
        <route src="a" dst="b"><link_ctn id="l"/></route>
      </AS>
    </platform>)");
  tir::sim::Engine engine(p);
  double done = -1;
  engine.spawn("s", 0, [&](tir::sim::Process&) -> tir::sim::Task {
    co_await engine.wait(engine.transfer_async(0, 1, 1e8));
    done = engine.now();
  });
  engine.run();
  EXPECT_NEAR(done, 1e8 / (0.92 * 1e8), 1e-6);  // PWL segment-2 factor
}
