#include <gtest/gtest.h>

#include <vector>

#include "platform/cluster.hpp"
#include "simkern/engine.hpp"
#include "support/error.hpp"

using namespace tir;
using namespace tir::sim;

namespace {

// 4-node cluster with analytically convenient numbers and an affine network
// model (factors of 1), so expected times can be computed by hand.
plat::Platform test_platform(int nodes = 4) {
  plat::Platform p;
  plat::ClusterSpec spec;
  spec.prefix = "n-";
  spec.count = nodes;
  spec.power = 1e9;            // 1 Gflop/s
  spec.bandwidth = 1e8;        // 100 MB/s NIC
  spec.latency = 1e-5;
  spec.backbone_bandwidth = 1e9;
  spec.backbone_latency = 1e-5;
  build_cluster(p, spec);
  p.set_net_model(plat::PiecewiseNetModel::affine_model());
  return p;
}

}  // namespace

TEST(Engine, SingleExecTakesFlopsOverPower) {
  const auto p = test_platform();
  Engine engine(p);
  double finished = -1;
  engine.spawn("worker", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.exec_async(0, 2e9));
    finished = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(finished, 2.0);  // 2 Gflop at 1 Gflop/s
}

TEST(Engine, EfficiencyScalesExecutionTime) {
  const auto p = test_platform();
  Engine engine(p);
  double finished = -1;
  engine.spawn("worker", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.exec_async(0, 1e9, 0.5));
    finished = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(finished, 2.0);
}

TEST(Engine, TwoExecsOnOneHostContend) {
  const auto p = test_platform();
  Engine engine(p);
  std::vector<double> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    engine.spawn("w" + std::to_string(i), 0, [&, i](Process&) -> Task {
      co_await engine.wait(engine.exec_async(0, 1e9));
      done[static_cast<std::size_t>(i)] = engine.now();
    });
  }
  engine.run();
  // Folding: both share the CPU, so both finish at 2 s instead of 1 s.
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST(Engine, ExecsOnDistinctHostsDoNotContend) {
  const auto p = test_platform();
  Engine engine(p);
  std::vector<double> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    engine.spawn("w" + std::to_string(i), i, [&, i](Process&) -> Task {
      co_await engine.wait(engine.exec_async(i, 1e9));
      done[static_cast<std::size_t>(i)] = engine.now();
    });
  }
  engine.run();
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
}

TEST(Engine, StaggeredExecsShareFairly) {
  // w0 runs alone for 1 s (1e9 flops done), then shares for the rest.
  const auto p = test_platform();
  Engine engine(p);
  double done0 = -1, done1 = -1;
  engine.spawn("w0", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.exec_async(0, 2e9));
    done0 = engine.now();
  });
  engine.spawn("w1", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.timer_async(1.0));
    co_await engine.wait(engine.exec_async(0, 1e9));
    done1 = engine.now();
  });
  engine.run();
  // After t=1: both need 1e9 at 0.5e9/s each -> both finish at t=3.
  EXPECT_DOUBLE_EQ(done0, 3.0);
  EXPECT_DOUBLE_EQ(done1, 3.0);
}

TEST(Engine, TransferTimeIsLatencyPlusBandwidth) {
  const auto p = test_platform();
  Engine engine(p);
  double finished = -1;
  engine.spawn("sender", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.transfer_async(0, 1, 1e8));
    finished = engine.now();
  });
  engine.run();
  // Route latency: 1e-5 + 1e-5 + 1e-5; then 1e8 bytes at 1e8 B/s (NIC).
  EXPECT_NEAR(finished, 3e-5 + 1.0, 1e-9);
}

TEST(Engine, ZeroByteTransferCostsOnlyLatency) {
  const auto p = test_platform();
  Engine engine(p);
  double finished = -1;
  engine.spawn("sender", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.transfer_async(0, 1, 0));
    finished = engine.now();
  });
  engine.run();
  EXPECT_NEAR(finished, 3e-5, 1e-12);
}

TEST(Engine, ParallelTransfersContendOnSharedBackbone) {
  // Two flows from distinct sources to distinct destinations share only
  // the backbone (1e9 B/s); NICs (1e8) are the bottleneck, so no slowdown.
  const auto p = test_platform();
  Engine engine(p);
  std::vector<double> done(2, -1);
  engine.spawn("s0", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.transfer_async(0, 1, 1e8));
    done[0] = engine.now();
  });
  engine.spawn("s1", 2, [&](Process&) -> Task {
    co_await engine.wait(engine.transfer_async(2, 3, 1e8));
    done[1] = engine.now();
  });
  engine.run();
  EXPECT_NEAR(done[0], 3e-5 + 1.0, 1e-6);
  EXPECT_NEAR(done[1], 3e-5 + 1.0, 1e-6);
}

TEST(Engine, TransfersToSameDestinationShareTheNic) {
  const auto p = test_platform();
  Engine engine(p);
  std::vector<double> done(2, -1);
  engine.spawn("s0", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.transfer_async(0, 3, 1e8));
    done[0] = engine.now();
  });
  engine.spawn("s1", 1, [&](Process&) -> Task {
    co_await engine.wait(engine.transfer_async(1, 3, 1e8));
    done[1] = engine.now();
  });
  engine.run();
  // Destination NIC (1e8 B/s) is shared: each flow gets 5e7 B/s.
  EXPECT_NEAR(done[0], 3e-5 + 2.0, 1e-6);
  EXPECT_NEAR(done[1], 3e-5 + 2.0, 1e-6);
}

TEST(Engine, PiecewiseModelSlowsMidSizeMessages) {
  auto p = test_platform();
  p.set_net_model(plat::PiecewiseNetModel::default_cluster_model());
  Engine engine(p);
  double t_small = -1, t_mid = -1;
  engine.spawn("s", 0, [&](Process&) -> Task {
    const double start = engine.now();
    co_await engine.wait(engine.transfer_async(0, 1, 512));
    t_small = engine.now() - start;
    const double mid_start = engine.now();
    co_await engine.wait(engine.transfer_async(0, 1, 16 * 1024));
    t_mid = engine.now() - mid_start;
  });
  engine.run();
  // Segment 0 (512 B): latency factor 1.0, bandwidth factor 1.10.
  EXPECT_NEAR(t_small, 1.00 * 3e-5 + 512.0 / (1.10 * 1e8), 1e-9);
  // Segment 1 (16 KiB): latency factor 1.35, bandwidth factor 0.75.
  EXPECT_NEAR(t_mid, 1.35 * 3e-5 + 16384.0 / (0.75 * 1e8), 1e-9);
}

TEST(Engine, SelfTransferUsesLoopback) {
  const auto p = test_platform();
  Engine engine(p);
  double finished = -1;
  engine.spawn("s", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.transfer_async(0, 0, 6e9));
    finished = engine.now();
  });
  engine.run();
  // Loopback: 6 GB/s, 0.1 us latency -> ~1 s for 6 GB.
  EXPECT_NEAR(finished, 1.0 + 1e-7, 1e-6);
}

TEST(Engine, TimersFireInOrder) {
  const auto p = test_platform();
  Engine engine(p);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("t" + std::to_string(i), 0, [&, i](Process&) -> Task {
      co_await engine.wait(engine.timer_async(3.0 - i));
      order.push_back(i);
    });
  }
  engine.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 0);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, GateBlocksUntilOpened) {
  const auto p = test_platform();
  Engine engine(p);
  auto gate = engine.make_gate();
  double opened_at = -1;
  engine.spawn("waiter", 0, [&](Process&) -> Task {
    co_await engine.wait(gate);
    opened_at = engine.now();
  });
  engine.spawn("opener", 1, [&](Process&) -> Task {
    co_await engine.wait(engine.timer_async(2.5));
    gate->open();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(opened_at, 2.5);
}

TEST(Engine, AwaitingCompletedActivityIsInstant) {
  const auto p = test_platform();
  Engine engine(p);
  double t = -1;
  engine.spawn("w", 0, [&](Process&) -> Task {
    auto exec = engine.exec_async(0, 1e9);
    co_await engine.wait(engine.timer_async(5.0));
    co_await engine.wait(exec);  // finished long ago
    t = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(t, 5.0);
}

TEST(Engine, DeadlockIsDetected) {
  const auto p = test_platform();
  Engine engine(p);
  auto gate = engine.make_gate();
  engine.spawn("stuck", 0, [&](Process&) -> Task { co_await engine.wait(gate); });
  EXPECT_THROW(engine.run(), SimError);
}

TEST(Engine, DeadlockToleratedWhenConfigured) {
  const auto p = test_platform();
  Engine engine(p, EngineConfig{.deadlock_is_error = false});
  auto gate = engine.make_gate();
  engine.spawn("stuck", 0, [&](Process&) -> Task { co_await engine.wait(gate); });
  EXPECT_NO_THROW(engine.run());
}

TEST(Engine, ProcessExceptionPropagates) {
  const auto p = test_platform();
  Engine engine(p);
  engine.spawn("bad", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.timer_async(1.0));
    throw Error("boom");
  });
  EXPECT_THROW(engine.run(), Error);
}

TEST(Engine, NestedCoroutinesPropagateValues) {
  const auto p = test_platform();
  Engine engine(p);
  const auto add_delay = [&](double d) -> Co<double> {
    co_await engine.wait(engine.timer_async(d));
    co_return engine.now();
  };
  double result = -1;
  engine.spawn("nested", 0, [&](Process&) -> Task {
    const double a = co_await add_delay(1.0);
    const double b = co_await add_delay(2.0);
    result = a + b;
  });
  engine.run();
  EXPECT_DOUBLE_EQ(result, 1.0 + 3.0);
}

TEST(Engine, WaitAllCompletesAtMax) {
  const auto p = test_platform();
  Engine engine(p);
  double t = -1;
  engine.spawn("w", 0, [&](Process&) -> Task {
    std::vector<ActivityPtr> acts;
    acts.push_back(engine.timer_async(1.0));
    acts.push_back(engine.timer_async(4.0));
    acts.push_back(engine.timer_async(2.0));
    co_await wait_all(engine, std::move(acts));
    t = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(Engine, SpawnDuringRunWorks) {
  const auto p = test_platform();
  Engine engine(p);
  double child_done = -1;
  engine.spawn("parent", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.timer_async(1.0));
    engine.spawn("child", 1, [&](Process&) -> Task {
      co_await engine.wait(engine.timer_async(1.0));
      child_done = engine.now();
    });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(child_done, 2.0);
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    const auto p = test_platform();
    Engine engine(p);
    std::vector<double> done;
    for (int i = 0; i < 4; ++i) {
      engine.spawn("w" + std::to_string(i), i, [&, i](Process&) -> Task {
        co_await engine.wait(engine.exec_async(i, 1e8 * (i + 1)));
        co_await engine.wait(engine.transfer_async(i, (i + 1) % 4, 1e6));
        done.push_back(engine.now());
      });
    }
    engine.run();
    return done;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, StatsAreTracked) {
  const auto p = test_platform();
  Engine engine(p);
  engine.spawn("w", 0, [&](Process&) -> Task {
    co_await engine.wait(engine.exec_async(0, 1e6));
    co_await engine.wait(engine.transfer_async(0, 1, 1e6));
  });
  engine.run();
  EXPECT_GE(engine.stats().activities, 2u);
  EXPECT_GE(engine.stats().resumes, 1u);
  EXPECT_GE(engine.stats().solver_calls, 1u);
}

TEST(Engine, InvalidSpawnHostThrows) {
  const auto p = test_platform();
  Engine engine(p);
  EXPECT_THROW(
      engine.spawn("x", 99, [](Process&) -> Task { co_return; }),
      SimError);
}

TEST(Engine, UnfinishedCoroutinesAreReclaimed) {
  // Engine destruction with a process blocked mid-await must not leak or
  // crash (exercised under ASan in CI-style builds).
  const auto p = test_platform();
  auto gate = GatePtr{};
  {
    Engine engine(p, EngineConfig{.deadlock_is_error = false});
    gate = engine.make_gate();
    engine.spawn("stuck", 0,
                 [&](Process&) -> Task { co_await engine.wait(gate); });
    engine.run();
  }
  SUCCEED();
}
