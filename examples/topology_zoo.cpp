// Topology zoo example: acquire LU class S on 64 processes once, then
// replay the *same* time-independent traces across four interconnects in a
// single tir-sweep invocation — the paper's decoupling of acquisition from
// replay, stretched across the topology registry.
//
// Run:  ./topology_zoo [workdir]
// Then: tir-sweep <workdir>/topologies.list
//       tir-timeline --platform dragonfly:groups=9,routers=4,hosts=2
//                    --deployment block <workdir>/ti
// (pass the trace *directory*, not a shell glob: globs sort SG_process10
// before SG_process2 and scramble the pid order for >= 10 ranks)
#include <filesystem>
#include <fstream>
#include <iostream>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"

using namespace tir;

int main(int argc, char** argv) {
  const std::filesystem::path workdir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() /
                               "tir_topology_zoo";
  std::filesystem::create_directories(workdir);

  // --- 1. Acquire LU class S / 64 once --------------------------------------
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 64;
  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  const auto report = acq::run_acquisition(spec);
  std::cout << "Acquired LU class S on " << cfg.nprocs << " processes: "
            << report.ti_files.size() << " traces under " << (workdir / "ti")
            << "\n";

  // --- 2. One sweep list, four interconnects --------------------------------
  // Every topology offers >= 64 hosts; deployment=block fills them in host
  // id order, so rank i lands on the i-th host of each fabric.
  const auto list_file = workdir / "topologies.list";
  std::ofstream(list_file)
      << "default deployment=block traces=" << (workdir / "ti").string()
      << "\n"
      << "name=cluster   platform=cluster:hosts=64\n"
      << "name=dragonfly platform=dragonfly:groups=9,routers=4,hosts=2\n"
      << "name=fattree   platform=fattree:k=8\n"
      << "name=torus     platform=torus:dims=4x4x4\n";

  std::cout << "Sweep list:      " << list_file << "\n\n"
            << "Replay LU across the zoo in one deterministic sweep:\n"
            << "  tir-sweep " << list_file.string() << "\n\n"
            << "Then compare critical paths per fabric, e.g.:\n"
            << "  tir-timeline --platform dragonfly:groups=9,routers=4,hosts=2"
            << " \\\n      --deployment block " << (workdir / "ti").string()
            << "\n";
  return 0;
}
