// "What if?" exploration (paper §5): one acquired trace, many target
// platforms — no modification of the simulator, only different inputs.
//
// Acquires an LU class A trace once, then replays it against:
//   - the baseline cluster,
//   - CPUs 2x faster,
//   - network 10x faster,
//   - both upgrades,
//   - the ranks folded 2-per-node on half the machines.
//
// Run:  ./whatif_scenarios [workdir]
#include <filesystem>
#include <iomanip>
#include <iostream>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "support/units.hpp"

using namespace tir;

namespace {

double replay_on(const plat::ClusterSpec& spec, int nodes, int nprocs,
                 const trace::TraceSet& traces) {
  plat::Platform platform;
  auto cluster = spec;
  cluster.count = nodes;
  const auto hosts = plat::build_cluster(platform, cluster);
  std::vector<int> process_hosts;
  const int per_node = (nprocs + nodes - 1) / nodes;
  for (int p = 0; p < nprocs; ++p)
    process_hosts.push_back(hosts[static_cast<std::size_t>(p / per_node)]);
  replay::Replayer replayer(platform, process_hosts, traces);
  return replayer.run().simulated_time;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path workdir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() /
                               "tir_whatif";
  std::filesystem::create_directories(workdir);

  apps::LuConfig lu;
  lu.cls = apps::NpbClass::A;
  lu.nprocs = 16;
  lu.iteration_scale = 0.1;

  std::cout << "Acquiring one LU class A / 16-process trace...\n";
  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(lu);
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  const auto report = acq::run_acquisition(spec);
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);

  const plat::ClusterSpec base = plat::bordereau_spec(16);
  plat::ClusterSpec fast_cpu = base;
  fast_cpu.power *= 2;
  plat::ClusterSpec fast_net = base;
  fast_net.bandwidth *= 10;
  fast_net.backbone_bandwidth *= 10;
  fast_net.latency /= 10;
  fast_net.backbone_latency /= 10;
  plat::ClusterSpec both = fast_cpu;
  both.bandwidth = fast_net.bandwidth;
  both.backbone_bandwidth = fast_net.backbone_bandwidth;
  both.latency = fast_net.latency;
  both.backbone_latency = fast_net.backbone_latency;

  struct Scenario {
    const char* name;
    double time;
  };
  const Scenario scenarios[] = {
      {"baseline bordereau (16 nodes)", replay_on(base, 16, 16, traces)},
      {"CPUs 2x faster", replay_on(fast_cpu, 16, 16, traces)},
      {"network 10x faster", replay_on(fast_net, 16, 16, traces)},
      {"both upgrades", replay_on(both, 16, 16, traces)},
      {"folded 2/node on 8 nodes", replay_on(base, 8, 16, traces)},
  };

  std::cout << "\nScenario                              predicted time  speedup\n"
            << "--------------------------------------------------------------\n";
  const double baseline = scenarios[0].time;
  for (const auto& s : scenarios) {
    std::cout << std::left << std::setw(38) << s.name << std::setw(15)
              << units::format_duration(s.time) << std::fixed
              << std::setprecision(2) << baseline / s.time << "x\n";
  }
  std::cout << "\nSame trace, same simulator — only the platform and "
               "deployment inputs changed.\n";
  return 0;
}
