// "What if?" exploration (paper §5): one acquired trace, many target
// platforms — no modification of the simulator, only different inputs.
//
// Acquires an LU class A trace once, then sweeps it against:
//   - the baseline cluster,
//   - CPUs 2x faster,
//   - network 10x faster,
//   - both upgrades,
//   - the ranks folded 2-per-node on half the machines.
//
// Each target is one immutable ScenarioSpec sharing the same decoded trace
// set; SweepRunner replays them on a worker pool and returns the results
// in scenario order (see src/replay/sweep.hpp).
//
// Run:  ./whatif_scenarios [workdir]
#include <filesystem>
#include <iomanip>
#include <iostream>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "platform/cluster.hpp"
#include "replay/sweep.hpp"
#include "support/units.hpp"

using namespace tir;

namespace {

replay::ScenarioSpec scenario_on(std::string name,
                                 const plat::ClusterSpec& cluster_spec,
                                 int nodes, int nprocs,
                                 const trace::TraceSet& traces) {
  auto platform = std::make_shared<plat::Platform>();
  auto cluster = cluster_spec;
  cluster.count = nodes;
  const auto hosts = plat::build_cluster(*platform, cluster);

  replay::ScenarioSpec spec;
  spec.name = std::move(name);
  spec.platform = std::move(platform);
  const int per_node = (nprocs + nodes - 1) / nodes;
  for (int p = 0; p < nprocs; ++p)
    spec.process_hosts.push_back(hosts[static_cast<std::size_t>(p / per_node)]);
  spec.traces = traces;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path workdir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() /
                               "tir_whatif";
  std::filesystem::create_directories(workdir);

  apps::LuConfig lu;
  lu.cls = apps::NpbClass::A;
  lu.nprocs = 16;
  lu.iteration_scale = 0.1;

  std::cout << "Acquiring one LU class A / 16-process trace...\n";
  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(lu);
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  const auto report = acq::run_acquisition(spec);
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);

  const plat::ClusterSpec base = plat::bordereau_spec(16);
  plat::ClusterSpec fast_cpu = base;
  fast_cpu.power *= 2;
  plat::ClusterSpec fast_net = base;
  fast_net.bandwidth *= 10;
  fast_net.backbone_bandwidth *= 10;
  fast_net.latency /= 10;
  fast_net.backbone_latency /= 10;
  plat::ClusterSpec both = fast_cpu;
  both.bandwidth = fast_net.bandwidth;
  both.backbone_bandwidth = fast_net.backbone_bandwidth;
  both.latency = fast_net.latency;
  both.backbone_latency = fast_net.backbone_latency;

  const std::vector<replay::ScenarioSpec> scenarios = {
      scenario_on("baseline bordereau (16 nodes)", base, 16, 16, traces),
      scenario_on("CPUs 2x faster", fast_cpu, 16, 16, traces),
      scenario_on("network 10x faster", fast_net, 16, 16, traces),
      scenario_on("both upgrades", both, 16, 16, traces),
      scenario_on("folded 2/node on 8 nodes", base, 8, 16, traces),
  };
  const auto results =
      replay::run_sweep(scenarios, {.rethrow_errors = true});

  std::cout << "\nScenario                              predicted time  speedup\n"
            << "--------------------------------------------------------------\n";
  const double baseline = results[0].replay.simulated_time;
  for (const auto& r : results) {
    std::cout << std::left << std::setw(38) << r.name << std::setw(15)
              << units::format_duration(r.replay.simulated_time) << std::fixed
              << std::setprecision(2)
              << baseline / r.replay.simulated_time << "x\n";
  }
  std::cout << "\nSame trace (decoded once: " << traces.decode_count()
            << " parse passes for " << results.size()
            << " replays), same simulator — only the platform and "
               "deployment inputs changed.\n";
  return 0;
}
