// Dimensioning a cluster that is not at one's disposal — the paper's
// motivating use case.
//
// Workflow:
//   1. Acquire a time-independent trace of NPB LU class A on 16 processes
//      using only 4 physical nodes (Folding mode F-4): the trace does not
//      depend on the acquisition scenario.
//   2. Calibrate the target platform's flop rate from a small instrumented
//      instance (the §5 procedure, 5 repetitions).
//   3. Replay the trace on the calibrated 16-node target platform and
//      report the predicted execution time — and compare it against a
//      direct (high-fidelity) simulation of the application standing in
//      for the "actual" run.
//
// Run:  ./lu_dimensioning [workdir]
#include <filesystem>
#include <iostream>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "platform/cluster.hpp"
#include "replay/calibration.hpp"
#include "replay/replayer.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

using namespace tir;

int main(int argc, char** argv) {
  const std::filesystem::path workdir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path() / "tir_dimensioning";
  std::filesystem::create_directories(workdir);

  apps::LuConfig lu;
  lu.cls = apps::NpbClass::A;
  lu.nprocs = 16;
  lu.iteration_scale = 0.1;  // 25 of the 250 iterations, for a quick demo

  // --- 1. Acquire with folding: 16 ranks on 4 nodes ----------------------
  std::cout << "[1/3] Acquiring LU class A / 16 processes in mode F-4 "
               "(4 nodes)...\n";
  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(lu);
  spec.mode = acq::Mode::folding;
  spec.folding = 4;
  spec.workdir = workdir / "acq";
  const auto report = acq::run_acquisition(spec);
  std::cout << "      instrumented execution: "
            << units::format_duration(report.instrumented_time)
            << " on " << report.nodes_used << " nodes; trace: "
            << units::format_bytes(static_cast<double>(report.ti_bytes))
            << " (" << report.actions << " actions)\n";

  // --- 2. Calibrate the flop rate -----------------------------------------
  std::cout << "[2/3] Calibrating the target flop rate (5 x LU class W on 4 "
               "processes)...\n";
  apps::LuConfig small = lu;
  small.cls = apps::NpbClass::W;
  small.nprocs = 4;
  small.iteration_scale = 0.02;
  replay::CalibrationSpec cal;
  cal.small_instance = apps::make_lu_app(small);
  cal.workdir = workdir / "cal";
  const auto calibration = replay::calibrate_flop_rate(cal);
  std::cout << "      calibrated rate: "
            << units::format_flops_rate(calibration.flop_rate)
            << " (paper's Figure 5 instantiates 1.17 Gflop/s)\n";

  // --- 3. Replay on the calibrated 16-node target -------------------------
  std::cout << "[3/3] Replaying on the calibrated 16-node target...\n";
  plat::Platform target;
  auto target_spec = plat::bordereau_spec(16);
  target_spec.power = calibration.flop_rate;
  const auto hosts = plat::build_cluster(target, target_spec);
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);
  replay::Replayer replayer(target, hosts, traces);
  const double predicted = replayer.run().simulated_time;

  // Ground truth: the high-fidelity direct simulation on 16 real nodes.
  const auto ap = acq::build_acquisition_platform(acq::Mode::regular, 16, 1);
  sim::Engine engine(ap.platform);
  mpi::World world(engine, ap.rank_hosts);
  const auto app = apps::make_lu_app(lu);
  world.launch([&app](mpi::Rank& r) -> sim::Co<void> { co_await app.body(r); });
  engine.run();
  const double actual = engine.now();

  std::cout << "\n  predicted (trace replay): "
            << units::format_duration(predicted)
            << "\n  actual (direct run):      "
            << units::format_duration(actual)
            << "\n  relative error:           "
            << 100.0 * tir::relative_error(predicted, actual) << " %\n";
  return 0;
}
