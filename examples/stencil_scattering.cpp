// Scattering-mode acquisition (paper §4.2): acquire a 2-D stencil trace on
// nodes drawn from TWO clusters behind a WAN — more nodes than any single
// cluster offers — then replay it on a single homogeneous target cluster.
// The time-independent trace makes the WAN acquisition harmless: the
// replayed time matches a Regular-mode acquisition to well under 1%.
//
// Run:  ./stencil_scattering [workdir]
#include <filesystem>
#include <iostream>

#include "acquisition/acquisition.hpp"
#include "apps/stencil.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

using namespace tir;

namespace {

double replay_on_target(const acq::AcquisitionReport& report, int nprocs) {
  plat::Platform target;
  const auto hosts =
      plat::build_cluster(target, plat::bordereau_physical_spec(nprocs));
  const auto traces = trace::TraceSet::per_process_files(report.ti_files);
  replay::Replayer replayer(target, hosts, traces);
  return replayer.run().simulated_time;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path workdir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() /
                               "tir_scatter";
  std::filesystem::create_directories(workdir);

  apps::StencilConfig cfg;
  cfg.nprocs = 16;
  cfg.grid = 2048;
  cfg.iterations = 40;

  std::cout << "Acquiring a 16-process 2-D stencil in Scattering mode "
               "(bordereau + gdx across the WAN)...\n";
  acq::AcquisitionSpec scattered;
  scattered.app = apps::make_stencil_app(cfg);
  scattered.mode = acq::Mode::scattering;
  scattered.workdir = workdir / "scattered";
  const auto s_report = acq::run_acquisition(scattered);
  std::cout << "  instrumented execution (across the WAN): "
            << units::format_duration(s_report.instrumented_time) << "\n";

  std::cout << "Acquiring the same application in Regular mode...\n";
  acq::AcquisitionSpec regular = scattered;
  regular.mode = acq::Mode::regular;
  regular.workdir = workdir / "regular";
  const auto r_report = acq::run_acquisition(regular);
  std::cout << "  instrumented execution (single cluster):  "
            << units::format_duration(r_report.instrumented_time) << "\n";

  const double t_scattered = replay_on_target(s_report, cfg.nprocs);
  const double t_regular = replay_on_target(r_report, cfg.nprocs);

  std::cout << "\nReplay on the 16-node target cluster:\n"
            << "  from the scattered trace: "
            << units::format_duration(t_scattered) << "\n"
            << "  from the regular trace:   "
            << units::format_duration(t_regular) << "\n"
            << "  difference:               "
            << 100.0 * tir::relative_error(t_scattered, t_regular) << " %\n"
            << "\nA classical timed trace acquired across a WAN would have "
               "predicted something close to\nthe (much longer) WAN "
               "execution time instead.\n";
  return 0;
}
