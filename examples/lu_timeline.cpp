// Timeline example: acquire LU class S on 8 processes, then hand the
// time-independent traces to tir-timeline for the per-rank breakdown,
// critical path, and Chrome/Paje timeline exports.
//
// Run:  ./lu_timeline [workdir]
// Then: tir-timeline --platform <workdir>/platform.xml
//                    --deployment <workdir>/deployment.xml
//                    <workdir>/ti/SG_process*.trace
//                    --chrome lu.json --paje lu.paje
#include <filesystem>
#include <fstream>
#include <iostream>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "platform/cluster.hpp"
#include "platform/deployment.hpp"
#include "platform/platform_file.hpp"

using namespace tir;

int main(int argc, char** argv) {
  const std::filesystem::path workdir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() /
                               "tir_lu_timeline";
  std::filesystem::create_directories(workdir);

  // --- 1. Acquire LU class S / 8 (one iteration keeps this instant) -------
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::S;
  cfg.nprocs = 8;
  cfg.iteration_scale = 0.0;  // clamped to one iteration
  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  const auto report = acq::run_acquisition(spec);
  std::cout << "Acquired LU class S on " << cfg.nprocs << " processes: "
            << report.ti_files.size() << " time-independent traces under "
            << (workdir / "ti") << "\n";

  // --- 2. Target platform + deployment for the replay ----------------------
  const auto cluster = plat::bordereau_spec(cfg.nprocs);
  const auto platform_xml = workdir / "platform.xml";
  std::ofstream(platform_xml) << plat::cluster_to_xml(cluster, "AS_bordeaux");

  plat::Deployment deployment;
  for (int p = 0; p < cfg.nprocs; ++p)
    deployment.processes.push_back(plat::ProcessPlacement{
        "p" + std::to_string(p),
        cluster.prefix + std::to_string(p) + cluster.suffix,
        {report.ti_files[static_cast<std::size_t>(p)].filename().string()}});
  const auto deployment_xml = workdir / "deployment.xml";
  std::ofstream(deployment_xml) << deployment.to_xml();

  std::cout << "Platform file:   " << platform_xml << "\n"
            << "Deployment file: " << deployment_xml << "\n\n"
            << "Now render the timeline:\n"
            << "  tir-timeline --platform " << platform_xml.string()
            << " \\\n      --deployment " << deployment_xml.string();
  for (const auto& f : report.ti_files) std::cout << " \\\n      " << f.string();
  std::cout << " \\\n      --chrome lu.json --paje lu.paje\n";
  return 0;
}
