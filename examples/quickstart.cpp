// Quickstart: the paper's Figure 1 end to end.
//
// 1. Write the time-independent trace of a 4-process ring (Fig 1, right).
// 2. Write the platform (Fig 5) and deployment (Fig 6) files.
// 3. Replay the trace and print the simulated execution time.
//
// Run:  ./quickstart [workdir]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "platform/cluster.hpp"
#include "platform/deployment.hpp"
#include "platform/platform_file.hpp"
#include "replay/replayer.hpp"
#include "support/units.hpp"
#include "trace/text_format.hpp"

using namespace tir;

int main(int argc, char** argv) {
  const std::filesystem::path workdir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() /
                               "tir_quickstart";
  std::filesystem::create_directories(workdir);

  // --- 1. The Figure 1 time-independent trace -----------------------------
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> ring(4);
  ring[0] = {{0, ActionType::compute, -1, 1e6, 0, 0},
             {0, ActionType::send, 1, 1e6, 0, 0},
             {0, ActionType::recv, 3, 0, 0, 0}};
  for (int p = 1; p < 4; ++p)
    ring[static_cast<std::size_t>(p)] = {
        {p, ActionType::recv, p - 1, 0, 0, 0},
        {p, ActionType::compute, -1, 1e6, 0, 0},
        {p, ActionType::send, (p + 1) % 4, 1e6, 0, 0}};

  const auto trace_files = trace::write_split_traces(workdir, ring);
  std::cout << "Wrote the Figure 1 trace:\n";
  for (const auto& line : trace::read_all(trace_files[0]))
    std::cout << "  " << trace::to_line(line) << '\n';

  // --- 2. Platform (Fig 5) and deployment (Fig 6) -------------------------
  plat::ClusterSpec spec;
  spec.prefix = "mycluster-";
  spec.suffix = ".mysite.fr";
  spec.count = 4;
  spec.power = 1.17e9;
  spec.bandwidth = 1.25e8;
  spec.latency = 16.67e-6;
  spec.backbone_bandwidth = 1.25e9;
  spec.backbone_latency = 16.67e-6;

  const auto platform_xml = workdir / "platform.xml";
  std::ofstream(platform_xml) << plat::cluster_to_xml(spec, "AS_mysite");

  plat::Deployment deployment;
  for (int p = 0; p < 4; ++p)
    deployment.processes.push_back(plat::ProcessPlacement{
        "p" + std::to_string(p),
        "mycluster-" + std::to_string(p) + ".mysite.fr",
        {"SG_process" + std::to_string(p) + ".trace"}});
  const auto deployment_xml = workdir / "deployment.xml";
  std::ofstream(deployment_xml) << deployment.to_xml();
  std::cout << "\nPlatform file: " << platform_xml << "\n"
            << "Deployment file: " << deployment_xml << "\n";

  // --- 3. Replay -----------------------------------------------------------
  const auto result =
      replay::replay_files(platform_xml, deployment_xml, trace_files);
  std::cout << "\nReplayed " << result.actions_replayed << " actions.\n"
            << "Simulated execution time: "
            << units::format_duration(result.simulated_time) << "\n";
  return 0;
}
