// tir-traceinfo — inspect / convert time-independent traces.
//
// Usage:
//   tir-traceinfo TRACE...                  print aggregate statistics
//   tir-traceinfo --to-binary IN OUT        convert text -> binary
//   tir-traceinfo --to-text IN OUT          convert binary -> text
//   tir-traceinfo --to-compact IN OUT       loop-compress a text trace
#include <cstdio>
#include <cstring>
#include <vector>

#include "support/error.hpp"
#include "support/units.hpp"
#include "trace/binary_format.hpp"
#include "trace/compact.hpp"
#include "trace/text_format.hpp"
#include "trace/trace_set.hpp"

using namespace tir;

namespace {

int run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s TRACE... | --to-binary IN OUT | --to-text IN "
                 "OUT | --to-compact IN OUT\n",
                 argv[0]);
    return 2;
  }
  {
    if (std::strcmp(argv[1], "--to-binary") == 0 && argc == 4) {
      const auto bytes = trace::text_to_binary(argv[2], argv[3]);
      std::printf("wrote %s (%s)\n", argv[3],
                  units::format_bytes(static_cast<double>(bytes)).c_str());
      return 0;
    }
    if (std::strcmp(argv[1], "--to-text") == 0 && argc == 4) {
      const auto bytes = trace::binary_to_text(argv[2], argv[3]);
      std::printf("wrote %s (%s)\n", argv[3],
                  units::format_bytes(static_cast<double>(bytes)).c_str());
      return 0;
    }
    if (std::strcmp(argv[1], "--to-compact") == 0 && argc == 4) {
      const auto actions = trace::read_all(argv[2]);
      const int pid = actions.empty() ? 0 : actions.front().pid;
      const auto program = trace::compact_actions(actions);
      const auto bytes = trace::write_compact(argv[3], program, pid);
      std::printf("wrote %s (%s; %zu blocks for %llu actions)\n", argv[3],
                  units::format_bytes(static_cast<double>(bytes)).c_str(),
                  program.size(),
                  static_cast<unsigned long long>(
                      trace::expanded_size(program)));
      return 0;
    }
    std::vector<std::filesystem::path> files;
    for (int i = 1; i < argc; ++i) {
      if (argv[i][0] == '-') {
        std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
        return 2;
      }
      files.emplace_back(argv[i]);
    }
    const auto set = trace::TraceSet::per_process_files(files);
    const auto stats = set.stats();
    std::printf("processes:      %d\n", set.nprocs());
    std::printf("on disk:        %s\n",
                units::format_bytes(static_cast<double>(set.disk_bytes()))
                    .c_str());
    std::printf("actions:        %llu\n",
                static_cast<unsigned long long>(stats.actions));
    std::printf("  computes:     %llu (%.3g flops total)\n",
                static_cast<unsigned long long>(stats.computes),
                stats.total_flops);
    std::printf("  p2p messages: %llu (%s total)\n",
                static_cast<unsigned long long>(stats.p2p_messages),
                units::format_bytes(stats.total_bytes_sent).c_str());
    std::printf("  collectives:  %llu\n",
                static_cast<unsigned long long>(stats.collectives));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Unreadable or malformed inputs exit 2 with one `error:` line; nothing
  // escapes as an uncaught tir::Error.
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
