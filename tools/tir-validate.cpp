// tir-validate — check time-independent traces before replaying them.
//
// Usage:
//   tir-validate TRACE...                 one file per process
//   tir-validate --merged N TRACE         one merged file, N processes
//   tir-validate --lenient TRACE...       salvage corrupt files (keep each
//                                         file's clean prefix) and report
//                                         the globally consistent cut
//   tir-validate --json ...               machine-readable report
//   tir-validate --decode stream ...      validate through the bounded-
//                                         memory streaming decoder (the
//                                         default "auto" streams only when
//                                         the trace is large; results are
//                                         identical either way)
//
// Exit status: 0 = trace is well-formed (warnings allowed), 1 = validation
// errors found, 2 = usage or I/O problem.
#include <cstdio>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "trace/trace_set.hpp"
#include "trace/validate.hpp"

using namespace tir;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--lenient] [--merged N] "
               "[--decode stream|materialise|auto] TRACE...\n",
               argv0);
  std::exit(2);
}

int parse_int_flag(const char* argv0, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int value = std::stoi(text, &pos);
    if (pos != text.size() || value <= 0) throw std::invalid_argument("bad");
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "error: invalid process count '%s'\n", text.c_str());
    usage(argv0);
  }
}

int run(int argc, char** argv) {
  bool json = false;
  bool lenient = false;
  auto decode = trace::DecodePolicy::automatic;
  int merged_nprocs = 0;
  std::vector<std::filesystem::path> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--merged") {
      if (i + 1 >= argc) usage(argv[0]);
      merged_nprocs = parse_int_flag(argv[0], argv[++i]);
    } else if (arg == "--decode") {
      if (i + 1 >= argc) usage(argv[0]);
      decode = trace::parse_decode_policy(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) usage(argv[0]);
  if (merged_nprocs > 0 && files.size() != 1) {
    std::fprintf(stderr, "error: --merged takes exactly one trace file\n");
    return 2;
  }

  const auto mode =
      lenient ? trace::DecodeMode::lenient : trace::DecodeMode::strict;
  const trace::TraceSet traces =
      merged_nprocs > 0
          ? trace::TraceSet::merged_file(files.front(), merged_nprocs, mode,
                                         decode)
          : trace::TraceSet::per_process_files(files, mode, decode);

  const trace::ValidateReport report = trace::validate(traces);
  const double decode_coverage = traces.coverage();

  if (lenient) {
    const trace::ConsistentCut cut = trace::truncate_consistent(traces);
    if (json) {
      std::printf("{\"validate\": %s, \"decode_coverage\": %.6f, "
                  "\"cut\": {\"kept\": [",
                  report.to_json().c_str(), decode_coverage);
      for (std::size_t p = 0; p < cut.kept.size(); ++p)
        std::printf("%s%llu", p ? ", " : "",
                    static_cast<unsigned long long>(cut.kept[p]));
      std::printf("], \"dropped\": %llu, \"coverage\": %.6f}}\n",
                  static_cast<unsigned long long>(cut.dropped),
                  cut.coverage);
    } else {
      std::printf("%s", report.render().c_str());
      std::printf("decode coverage:  %.1f%% of trace bytes\n",
                  100.0 * decode_coverage);
      std::printf("consistent cut:   kept %llu of %llu action(s) (%.1f%%)\n",
                  static_cast<unsigned long long>(cut.total - cut.dropped),
                  static_cast<unsigned long long>(cut.total),
                  100.0 * cut.coverage);
      for (const auto& s : traces.salvage_report())
        if (!s.complete)
          std::printf("salvaged:         %s\n", s.error.c_str());
    }
  } else if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s", report.render().c_str());
  }
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
