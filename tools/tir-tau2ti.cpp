// tir-tau2ti — the paper's tau2simgrid: extracts time-independent traces
// from a directory of TAU trace/event files.
//
// Usage: tir-tau2ti TAU_DIR NPROCS OUT_DIR [--binary] [--recv-volumes]
#include <cstdio>
#include <cstring>
#include <string>

#include "acquisition/tau2ti.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

using namespace tir;

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s TAU_DIR NPROCS OUT_DIR [--binary] "
                 "[--recv-volumes]\n",
                 argv[0]);
    return 2;
  }
  acq::ExtractOptions options;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--binary") == 0) {
      options.binary_output = true;
    } else if (std::strcmp(argv[i], "--recv-volumes") == 0) {
      options.recv_volumes = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  try {
    const auto result =
        acq::tau2ti(argv[1], std::atoi(argv[2]), argv[3], options);
    std::printf("TAU records: %llu (%s)\n",
                static_cast<unsigned long long>(result.tau_records),
                units::format_bytes(static_cast<double>(result.tau_bytes))
                    .c_str());
    std::printf("actions:     %llu (%s)\n",
                static_cast<unsigned long long>(result.actions),
                units::format_bytes(static_cast<double>(result.ti_bytes))
                    .c_str());
    std::printf("wall time:   %.3f s\n", result.wall_seconds);
    std::printf("wrote %zu trace files under %s\n", result.ti_files.size(),
                argv[3]);
  } catch (const Error& e) {
    std::fprintf(stderr, "tir-tau2ti: %s\n", e.what());
    return 1;
  }
  return 0;
}
