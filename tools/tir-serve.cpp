// tir-serve — persistent replay-as-a-service daemon.
//
// Usage:
//   tir-serve [--stdin] [--socket PATH] [--workers N] [--queue N]
//             [--batch N] [--cache-bytes B] [--memo N] [--base DIR]
//
// Protocol: newline-delimited JSON, one request per line, one response
// line per request, in completion order (responses carry the request id).
// A request is a JSON object whose "id" is echoed back and whose remaining
// string/number/boolean fields are exactly the sweep-list vocabulary
// (platform=, traces= or merged=, deployment=, eager=, collectives=,
// efficiency=, fastpath=, shards=, fault=, perturb=, seed=) plus
// replica=R to pick one Monte-Carlo replica of a perturbed scenario:
//
//   {"id":"r1","platform":"cluster:hosts=8","traces":"ti","deployment":"block"}
//   {"id":"r2","platform":"cluster:hosts=8","traces":"ti","deployment":"block",
//    "perturb":"hostnoise:0.05","replica":3}
//   {"cmd":"stats"}
//
// Control lines: {"cmd":"stats"} prints a stats snapshot, {"cmd":"quit"}
// drains and exits. Responses:
//
//   {"id":"r1","status":"ok","name":"...","sim_time":...,"coverage":...,
//    "actions_replayed":...,"processes":...,"trace":"<digest>",
//    "cache":{"trace":"hit","memo":"miss"},"queue_s":...,"decode_s":...,
//    "solve_s":...}
//
// status is one of ok | deadlock | failed | badrequest | overloaded.
// Repeats of a scenario already answered hit the result memo and return
// the stored report bit-for-bit without re-simulation; repeats of a trace
// directory (under any spelling or encoding) share one decode through the
// content-addressed trace cache.
//
// --stdin (default when no --socket) serves the stdin/stdout pipe and
// exits at EOF. --socket PATH listens on a unix stream socket and serves
// connections one at a time — scenario throughput comes from batching
// inside the service, not connection concurrency — until {"cmd":"quit"}.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>

#include "serve/json.hpp"
#include "serve/service.hpp"
#include "support/error.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define TIR_HAVE_UNIX_SOCKETS 1
#else
#define TIR_HAVE_UNIX_SOCKETS 0
#endif

using namespace tir;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--stdin] [--socket PATH] [--workers N] "
               "[--queue N] [--batch N] [--cache-bytes B] [--memo N] "
               "[--base DIR]\n"
               "newline-delimited JSON protocol; see the header of "
               "tools/tir-serve.cpp\n",
               argv0);
  std::exit(2);
}

int parse_positive(const char* what, const std::string& s) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size() || v < 0) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                 what, s.c_str());
    std::exit(2);
  }
}

/// Serves one request line; returns false when the line asks to quit.
/// Output lines are serialised by `out_mu` because responses surface from
/// the dispatcher thread while shed/badrequest answers print inline.
bool serve_line(serve::ReplayService& service, const std::string& line,
                std::FILE* out, std::mutex& out_mu) {
  const auto emit = [out, &out_mu](const std::string& rendered) {
    std::lock_guard<std::mutex> lock(out_mu);
    std::fputs(rendered.c_str(), out);
    std::fputc('\n', out);
    std::fflush(out);
  };

  serve::Request request;
  try {
    const serve::JsonValue v = serve::parse_json(line);
    if (const auto* cmd = v.find("cmd");
        cmd != nullptr && cmd->type == serve::JsonValue::Type::string) {
      if (cmd->string == "quit") return false;
      if (cmd->string == "stats") {
        service.drain();
        emit(serve::render_stats(service.stats()));
        return true;
      }
      emit("{\"status\":\"badrequest\",\"error\":\"unknown cmd '" +
           serve::json_escape(cmd->string) + "'\"}");
      return true;
    }
    request = serve::parse_request_line(line);
  } catch (const std::exception& e) {
    serve::Response response;
    response.status = serve::Response::Status::badrequest;
    response.error = e.what();
    emit(serve::render_response(response));
    return true;
  }

  const serve::Request copy = request;
  const bool accepted =
      service.submit(std::move(request), [emit](serve::Response response) {
        emit(serve::render_response(response));
      });
  if (!accepted) emit(serve::render_response(service.make_overloaded(copy)));
  return true;
}

int serve_stdin(serve::ReplayService& service) {
  std::mutex out_mu;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!serve_line(service, line, stdout, out_mu)) break;
  }
  service.drain();
  return 0;
}

#if TIR_HAVE_UNIX_SOCKETS
int serve_socket(serve::ReplayService& service, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("tir-serve: socket");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "tir-serve: socket path too long\n");
    ::close(listener);
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror("tir-serve: bind/listen");
    ::close(listener);
    return 2;
  }
  std::fprintf(stderr, "tir-serve: listening on %s\n", path.c_str());

  bool quit = false;
  while (!quit) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::perror("tir-serve: accept");
      break;
    }
    std::FILE* stream = ::fdopen(fd, "r+");
    if (stream == nullptr) {
      ::close(fd);
      continue;
    }
    std::mutex out_mu;
    std::string line;
    int c;
    while ((c = std::fgetc(stream)) != EOF) {
      if (c != '\n') {
        line += static_cast<char>(c);
        continue;
      }
      if (!line.empty() && !serve_line(service, line, stream, out_mu)) {
        quit = true;
        break;
      }
      line.clear();
    }
    if (!quit && !line.empty()) quit = !serve_line(service, line, stream, out_mu);
    service.drain();  // flush in-flight responses before the stream closes
    std::fclose(stream);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  serve::ServiceOptions options;
  std::string socket_path;
  bool use_stdin = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--workers") {
      options.workers = parse_positive("--workers", next());
    } else if (arg == "--queue") {
      options.queue_limit =
          static_cast<std::size_t>(parse_positive("--queue", next()));
    } else if (arg == "--batch") {
      options.max_batch =
          static_cast<std::size_t>(parse_positive("--batch", next()));
    } else if (arg == "--cache-bytes") {
      options.trace_cache.byte_budget = static_cast<std::uint64_t>(
          parse_positive("--cache-bytes", next()));
    } else if (arg == "--memo") {
      options.memo.capacity =
          static_cast<std::size_t>(parse_positive("--memo", next()));
    } else if (arg == "--base") {
      options.base_dir = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (use_stdin && !socket_path.empty()) {
    std::fprintf(stderr, "--stdin and --socket are exclusive\n");
    usage(argv[0]);
  }

  try {
    serve::ReplayService service(options);
    if (!socket_path.empty()) {
#if TIR_HAVE_UNIX_SOCKETS
      return serve_socket(service, socket_path);
#else
      std::fprintf(stderr, "tir-serve: sockets unavailable on this platform\n");
      return 2;
#endif
    }
    return serve_stdin(service);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
