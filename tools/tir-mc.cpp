// tir-mc — Monte-Carlo summary mode over a scenario list: replica fan-out,
// mean / stddev / 95% CI per scenario, and a per-resource sensitivity
// ranking (which host or link perturbation moves the makespan most).
//
// Usage:
//   tir-mc [--workers N] [--replicas N] [--seed S] [--format table|csv]
//          [--output FILE] [--top K] SCENARIOS.list
//
// Reads the same list format as tir-sweep (tools/sweep_list.hpp). Every
// row needs a perturb= model (its own or inherited from a `default` line);
// mc= / seed= on a row override --replicas / --seed. Where tir-sweep
// prints one row per replica, tir-mc aggregates: the deterministic
// baseline point next to the Monte-Carlo distribution — the Fig 8 error
// bar the paper's single-calibration replay cannot produce — plus the
// sensitivity table cross-checkable against tir-timeline's critical path.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "replay/montecarlo.hpp"
#include "sweep_list.hpp"

using namespace tir;
namespace fs = std::filesystem;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--replicas N] [--seed S] "
               "[--format table|csv] [--output FILE] [--top K] "
               "SCENARIOS.list\n"
               "see the header of tools/sweep_list.hpp for the list format\n",
               argv0);
  std::exit(2);
}

std::string csv_cell(const std::string& s) {
  std::string out;
  for (const char c : s) out += (c == ',' || c == '\n') ? ';' : c;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string list_arg, format = "table", output;
  int replicas = 32;
  std::uint64_t seed = 1;
  bool seed_given = false;
  int workers = 0;
  std::size_t top = 5;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--workers") {
        workers = tools::parse_int("--workers", next());
      } else if (arg == "--replicas") {
        replicas = tools::parse_int("--replicas", next());
        if (replicas < 1) usage(argv[0]);
      } else if (arg == "--seed") {
        seed = tools::parse_u64("--seed", next());
        seed_given = true;
      } else if (arg == "--top") {
        top = static_cast<std::size_t>(tools::parse_int("--top", next()));
      } else if (arg == "--format") {
        format = next();
        if (format != "table" && format != "csv") usage(argv[0]);
      } else if (arg == "--output") {
        output = next();
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        usage(argv[0]);
      } else if (list_arg.empty()) {
        list_arg = arg;
      } else {
        usage(argv[0]);
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      usage(argv[0]);
    }
  }
  if (list_arg.empty()) usage(argv[0]);

  try {
    const auto entries = tools::load_sweep_list(fs::path(list_arg));

    std::ostringstream os;
    if (format == "csv")
      os << "name,replicas,failures,baseline,mean,stddev,ci95,min,max,"
            "top_sensitivity,top_impact\n";

    bool any_failure = false;
    for (const tools::SweepEntry& entry : entries) {
      if (!entry.has_perturb || entry.perturb.empty())
        throw Error("scenario '" + entry.spec.name +
                    "': tir-mc needs a perturb= model on every row");
      replay::McOptions opts;
      opts.replicas = entry.mc > 0 ? entry.mc : replicas;
      opts.seed = seed_given ? seed : entry.seed;
      opts.workers = workers;
      std::fprintf(stderr, "tir-mc: %s — %d replica(s), seed %llu\n",
                   entry.spec.name.c_str(), opts.replicas,
                   static_cast<unsigned long long>(opts.seed));
      const replay::McSummary summary =
          replay::run_monte_carlo(entry.spec, entry.perturb, opts);
      if (summary.failures > 0) any_failure = true;

      if (format == "table") {
        os << summary.render(top) << '\n';
      } else {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "%.9f,%.9f,%.9f,%.9f,%.9f,%.9f", summary.baseline,
                      summary.mean, summary.stddev, summary.ci95, summary.min,
                      summary.max);
        os << csv_cell(summary.name) << ',' << summary.replicas << ','
           << summary.failures << ',' << buf << ',';
        if (!summary.sensitivity.empty()) {
          const auto& e = summary.sensitivity.front();
          std::snprintf(buf, sizeof buf, "%.9f", e.impact);
          os << (e.kind == replay::FaultSpec::Kind::host ? "host:" : "link:")
             << csv_cell(e.name) << ',' << buf;
        } else {
          os << ',';
        }
        os << '\n';
      }
    }

    if (output.empty()) {
      std::fputs(os.str().c_str(), stdout);
    } else {
      std::ofstream out(output);
      if (!out) throw IoError("cannot write '" + output + "'");
      out << os.str();
    }
    if (any_failure) {
      std::fprintf(stderr, "error: some replicas failed\n");
      return 1;
    }
  } catch (const IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
