// Shared scenario-list parsing for tir-sweep and tir-mc.
//
// A list file holds one scenario per non-comment line, as whitespace-
// separated key=value pairs; a line starting with `default` sets defaults
// for every later scenario. Relative paths resolve against the list file's
// directory; platforms, deployments and trace sets are cached by path so a
// sweep decodes each input exactly once.
//
// Keys:
//   name=LABEL             row label (default scenario-<index>)
//   platform=FILE|SPEC     platform XML or a topology-registry spec
//   deployment=FILE|block|roundrobin
//   traces=A,B,...         per-process trace files / a directory in pid order
//   merged=FILE:N          one merged trace file carrying N processes
//   eager=BYTES            eager/rendezvous switch
//   collectives=flat|binomial
//   efficiency=X           compute-rate scale
//   fault=SPEC,...         fault timeline events (see parse_fault below):
//                          host:NAME:FACTOR@TIMES or
//                          link:NAME:BW[:LAT]@TIMES, where TIMES is
//                          START[-END][xN][/PERIOD] — `-END` recovers the
//                          resource at END, `xN/PERIOD` repeats the cycle
//                          (a link flap train)
//   perturb=K:V,...        stochastic perturbation model; keys hostnoise,
//                          bwnoise, latnoise (relative stddevs), rate,
//                          horizon, duration, severity (transient-fault
//                          process), min, max (factor clamps)
//   mc=N                   Monte-Carlo replica count for this row
//   seed=S                 sweep seed (default 1); replicas derive from it
//   fastpath=on|off        coroutine fast path (bit-identical results)
//   shards=N               solver shard threads, [1, 512] (bit-identical)
//
// Fault targets, perturbation parameters and engine knobs are validated
// here, at parse time — a typo fails with the scenario name attached
// instead of mid-sweep inside a worker thread.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "platform/deployment.hpp"
#include "platform/platform_file.hpp"
#include "platform/topology.hpp"
#include "replay/perturb.hpp"
#include "replay/scenario.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"
#include "trace/trace_set.hpp"

namespace tir::tools {

namespace fs = std::filesystem;

inline int parse_int(const std::string& what, const std::string& s) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(what + ": expected an integer, got '" + s + "'");
  }
}

inline double parse_double(const std::string& what, const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(what + ": expected a number, got '" + s + "'");
  }
}

inline std::uint64_t parse_u64(const std::string& what, const std::string& s) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(what + ": expected a non-negative integer, got '" + s +
                     "'");
  }
}

struct KeyValues {
  std::map<std::string, std::string> kv;

  const std::string* find(const std::string& key) const {
    const auto it = kv.find(key);
    return it == kv.end() ? nullptr : &it->second;
  }
};

/// Shared immutable inputs, cached by path so a sweep loads/decodes once.
struct InputCache {
  fs::path base;  ///< list-file directory for relative paths
  std::map<std::string, std::shared_ptr<const plat::Platform>> platforms;
  std::map<std::string, plat::Deployment> deployments;
  std::map<std::string, trace::TraceSet> trace_sets;

  fs::path resolve(const std::string& path) const {
    const fs::path p(path);
    return p.is_absolute() ? p : base / p;
  }

  std::shared_ptr<const plat::Platform> platform(const std::string& spec) {
    auto it = platforms.find(spec);
    if (it == platforms.end()) {
      // Topology specs build through the registry; anything else is a file
      // path and resolves against the list-file directory.
      const std::string head{str::trim(spec.substr(0, spec.find(':')))};
      auto built = plat::is_topology(head)
                       ? plat::make_platform(spec)
                       : plat::load_platform_file(resolve(spec).string());
      it = platforms
               .emplace(spec, std::make_shared<const plat::Platform>(
                                  std::move(built)))
               .first;
    }
    return it->second;
  }

  const plat::Deployment& deployment(const std::string& file) {
    auto it = deployments.find(file);
    if (it == deployments.end())
      it = deployments
               .emplace(file,
                        plat::load_deployment_file(resolve(file).string()))
               .first;
    return it->second;
  }

  trace::TraceSet traces(const std::string& spec, bool merged) {
    const std::string key = (merged ? "merged:" : "split:") + spec;
    auto it = trace_sets.find(key);
    if (it != trace_sets.end()) return it->second;

    trace::TraceSet set;
    if (merged) {
      // merged=FILE:N — one file carrying N process streams.
      const auto colon = spec.rfind(':');
      if (colon == std::string::npos)
        throw Error("merged=" + spec + ": expected FILE:NPROCS");
      set = trace::TraceSet::merged_file(
          resolve(spec.substr(0, colon)),
          parse_int("merged=" + spec, spec.substr(colon + 1)));
    } else {
      std::vector<fs::path> files;
      for (const auto& token : str::split(spec, ',')) {
        const fs::path p = resolve(std::string(token));
        if (fs::is_directory(p)) {
          for (int pid = 0;; ++pid) {
            const fs::path f =
                p / ("SG_process" + std::to_string(pid) + ".trace");
            if (!fs::exists(f)) break;
            files.push_back(f);
          }
        } else {
          files.push_back(p);
        }
      }
      set = trace::TraceSet::per_process_files(std::move(files));
    }
    trace_sets.emplace(key, set);
    return set;
  }
};

inline KeyValues parse_tokens(const std::string& line,
                              const fs::path& list_file, std::size_t line_no) {
  KeyValues out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw ParseError(list_file.string() + ":" + std::to_string(line_no) +
                       ": expected key=value, got '" + token + "'");
    out.kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

/// Parses one fault entry: host:NAME:FACTOR@TIMES or
/// link:NAME:BWFACTOR[:LATFACTOR]@TIMES, with TIMES =
/// START[-END][xN][/PERIOD]. Examples:
///   host:node-3:0.5@10        degrade at t=10, permanent
///   link:backbone:0.1@5-8     outage over [5, 8), then heal
///   link:up0:0.2@5-6x4/10     flap train: four 1 s outages, 10 s apart
inline replay::FaultSpec parse_fault(const std::string& scenario,
                                     const std::string& entry) {
  const std::string what = "scenario '" + scenario + "': fault '" + entry +
                           "'";
  const auto at = entry.rfind('@');
  if (at == std::string::npos)
    throw Error(what + ": missing @TIME");
  replay::FaultSpec fault;

  // TIMES = START[-END][xN][/PERIOD], parsed back to front.
  std::string times = entry.substr(at + 1);
  if (const auto slash = times.find('/'); slash != std::string::npos) {
    fault.period = parse_double(what + " period", times.substr(slash + 1));
    times = times.substr(0, slash);
  }
  if (const auto x = times.find('x'); x != std::string::npos) {
    fault.repeat = parse_int(what + " repeat", times.substr(x + 1));
    times = times.substr(0, x);
  }
  // A '-' splits START-END unless it is an exponent sign ("1e-3").
  auto dash = std::string::npos;
  for (std::size_t i = 1; i < times.size(); ++i)
    if (times[i] == '-' && times[i - 1] != 'e' && times[i - 1] != 'E') {
      dash = i;
      break;
    }
  if (dash != std::string::npos) {
    fault.until_time = parse_double(what + " until", times.substr(dash + 1));
    times = times.substr(0, dash);
  }
  fault.at_time = parse_double(what + " time", times);

  // Named, not a temporary: split() returns views into this string and a
  // range-for does not lifetime-extend its range initializer.
  const std::string body = entry.substr(0, at);
  std::vector<std::string> parts;
  for (const auto& p : str::split(body, ':'))
    parts.emplace_back(p);
  if (parts.size() < 3) throw Error(what + ": expected kind:NAME:FACTOR");
  fault.target = parts[1];
  if (parts[0] == "host") {
    if (parts.size() != 3) throw Error(what + ": host takes one factor");
    fault.kind = replay::FaultSpec::Kind::host;
    fault.compute_factor = parse_double(what + " factor", parts[2]);
  } else if (parts[0] == "link") {
    if (parts.size() > 4) throw Error(what + ": too many link factors");
    fault.kind = replay::FaultSpec::Kind::link;
    fault.bandwidth_factor = parse_double(what + " bandwidth", parts[2]);
    if (parts.size() == 4)
      fault.latency_factor = parse_double(what + " latency", parts[3]);
  } else {
    throw Error(what + ": kind must be host or link");
  }
  return fault;
}

/// Parses perturb=K:V,... into a PerturbSpec (validated by the caller via
/// replay::validate_perturbation once the scenario name is known).
inline replay::PerturbSpec parse_perturb(const std::string& scenario,
                                         const std::string& value) {
  const std::string what = "scenario '" + scenario + "': perturb";
  replay::PerturbSpec spec;
  for (const auto& token : str::split(value, ',')) {
    const std::string pair(token);
    const auto colon = pair.find(':');
    if (colon == std::string::npos || colon == 0)
      throw Error(what + ": expected key:value, got '" + pair + "'");
    const std::string key = pair.substr(0, colon);
    const double v = parse_double(what + " " + key, pair.substr(colon + 1));
    if (key == "hostnoise")
      spec.host_noise = v;
    else if (key == "bwnoise")
      spec.link_bw_noise = v;
    else if (key == "latnoise")
      spec.link_lat_noise = v;
    else if (key == "rate")
      spec.fault_rate = v;
    else if (key == "horizon")
      spec.fault_horizon = v;
    else if (key == "duration")
      spec.fault_duration = v;
    else if (key == "severity")
      spec.fault_severity = v;
    else if (key == "min")
      spec.min_factor = v;
    else if (key == "max")
      spec.max_factor = v;
    else
      throw Error(what + ": unknown key '" + key + "'");
  }
  return spec;
}

/// One parsed list row: the deterministic scenario plus its (optional)
/// stochastic envelope.
struct SweepEntry {
  replay::ScenarioSpec spec;
  replay::PerturbSpec perturb;
  bool has_perturb = false;
  int mc = 0;               ///< Monte-Carlo replicas; 0 = deterministic row
  std::uint64_t seed = 1;   ///< replica streams derive from this
};

inline SweepEntry build_scenario(const KeyValues& kv, InputCache& cache,
                                 std::size_t index) {
  SweepEntry entry;
  replay::ScenarioSpec& spec = entry.spec;
  if (const auto* name = kv.find("name"))
    spec.name = *name;
  else
    spec.name = "scenario-" + std::to_string(index);

  const auto* platform = kv.find("platform");
  if (platform == nullptr)
    throw Error("scenario '" + spec.name + "': missing platform=");
  spec.platform = cache.platform(*platform);
  spec.platform_label = *platform;

  if (const auto* merged = kv.find("merged")) {
    spec.traces = cache.traces(*merged, /*merged=*/true);
  } else if (const auto* traces = kv.find("traces")) {
    spec.traces = cache.traces(*traces, /*merged=*/false);
  } else {
    throw Error("scenario '" + spec.name + "': missing traces= or merged=");
  }

  const auto* deployment = kv.find("deployment");
  if (deployment == nullptr)
    throw Error("scenario '" + spec.name + "': missing deployment=");
  if (*deployment == "block" || *deployment == "roundrobin" ||
      *deployment == "rr")
    spec.process_hosts = plat::resolve_deployment_spec(
        *deployment, *spec.platform, spec.traces.nprocs());
  else
    spec.process_hosts =
        cache.deployment(*deployment).resolve(*spec.platform);

  if (const auto* eager = kv.find("eager"))
    spec.config.mpi.eager_threshold = units::parse_bytes(*eager);
  if (const auto* coll = kv.find("collectives")) {
    if (*coll == "flat")
      spec.config.mpi.collectives = mpi::CollectiveAlgo::flat;
    else if (*coll == "binomial")
      spec.config.mpi.collectives = mpi::CollectiveAlgo::binomial;
    else
      throw Error("scenario '" + spec.name + "': unknown collectives '" +
                  *coll + "'");
  }
  if (const auto* eff = kv.find("efficiency"))
    spec.config.compute_efficiency =
        parse_double("scenario '" + spec.name + "': efficiency", *eff);
  if (const auto* fastpath = kv.find("fastpath")) {
    if (*fastpath == "on")
      spec.config.fast_path = true;
    else if (*fastpath == "off")
      spec.config.fast_path = false;
    else
      throw Error("scenario '" + spec.name + "': fastpath must be on or off" +
                  ", got '" + *fastpath + "'");
  }
  if (const auto* shards = kv.find("shards")) {
    spec.config.shards =
        parse_int("scenario '" + spec.name + "': shards", *shards);
    if (spec.config.shards < 1 || spec.config.shards > 512)
      throw Error("scenario '" + spec.name + "': shards must be in [1, 512]" +
                  ", got '" + *shards + "'");
  }
  if (const auto* fault = kv.find("fault"))
    for (const auto& token : str::split(*fault, ','))
      spec.faults.push_back(parse_fault(spec.name, std::string(token)));
  if (const auto* perturb = kv.find("perturb")) {
    entry.perturb = parse_perturb(spec.name, *perturb);
    entry.has_perturb = true;
    replay::validate_perturbation(entry.perturb,
                                  "scenario '" + spec.name + "': perturb");
  }
  if (const auto* mc = kv.find("mc")) {
    entry.mc = parse_int("scenario '" + spec.name + "': mc", *mc);
    if (entry.mc < 1)
      throw Error("scenario '" + spec.name + "': mc must be >= 1");
  }
  if (const auto* seed = kv.find("seed"))
    entry.seed = parse_u64("scenario '" + spec.name + "': seed", *seed);

  // Fail fast: resolve fault targets against the platform now, so an
  // unknown host/link name is reported with the scenario it came from
  // instead of throwing mid-replay inside a worker.
  replay::validate_faults(spec);
  return entry;
}

/// Loads a whole list file (defaults, comments, caching). Throws IoError /
/// ParseError / Error with file:line or scenario-name context.
inline std::vector<SweepEntry> load_sweep_list(const fs::path& list_file) {
  std::ifstream in(list_file);
  if (!in)
    throw IoError("cannot open scenario list '" + list_file.string() + "'");

  InputCache cache;
  cache.base = list_file.has_parent_path() ? list_file.parent_path()
                                           : fs::path(".");

  KeyValues defaults;
  std::vector<SweepEntry> entries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = std::string(str::trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed.rfind("default", 0) == 0 &&
        (trimmed.size() == 7 || trimmed[7] == ' ' || trimmed[7] == '\t')) {
      const KeyValues d = parse_tokens(trimmed.substr(7), list_file, line_no);
      for (const auto& [k, v] : d.kv) defaults.kv[k] = v;
      continue;
    }
    KeyValues kv = defaults;
    const KeyValues own = parse_tokens(trimmed, list_file, line_no);
    for (const auto& [k, v] : own.kv) kv.kv[k] = v;
    entries.push_back(build_scenario(kv, cache, entries.size()));
  }
  if (entries.empty())
    throw Error("scenario list '" + list_file.string() + "' is empty");
  return entries;
}

}  // namespace tir::tools
