// Shared scenario-list parsing for tir-sweep, tir-mc and tir-serve.
//
// A list file holds one scenario per non-comment line, as whitespace-
// separated key=value pairs; a line starting with `default` sets defaults
// for every later scenario. Relative paths resolve against the list file's
// directory; platforms, deployments and trace sets are cached so a sweep
// loads/decodes each input exactly once — trace sets through the
// content-addressed serve::TraceCache, so `ti`, `./ti` and the absolute
// spelling of the same directory share one decode.
//
// Keys:
//   name=LABEL             row label (default scenario-<index>)
//   platform=FILE|SPEC     platform XML or a topology-registry spec
//   deployment=FILE|block|roundrobin
//   traces=A,B,...         per-process trace files / a directory in pid order
//   merged=FILE:N          one merged trace file carrying N processes
//   eager=BYTES            eager/rendezvous switch
//   collectives=flat|binomial
//   efficiency=X           compute-rate scale
//   fault=SPEC,...         fault timeline events (see serve::parse_fault):
//                          host:NAME:FACTOR@TIMES or
//                          link:NAME:BW[:LAT]@TIMES, where TIMES is
//                          START[-END][xN][/PERIOD] — `-END` recovers the
//                          resource at END, `xN/PERIOD` repeats the cycle
//                          (a link flap train)
//   perturb=K:V,...        stochastic perturbation model; keys hostnoise,
//                          bwnoise, latnoise (relative stddevs), rate,
//                          horizon, duration, severity (transient-fault
//                          process), min, max (factor clamps)
//   mc=N                   Monte-Carlo replica count for this row
//   seed=S                 sweep seed (default 1); replicas derive from it
//   fastpath=on|off        coroutine fast path (bit-identical results)
//   shards=N               solver shard threads, [1, 512] (bit-identical)
//   decode=stream|materialise|auto
//                          trace decode path: stream replays through a
//                          bounded-memory offset index, materialise decodes
//                          fully, auto (default) streams only large traces
//                          (bit-identical results; memo keys ignore it)
//
// The parsing/building machinery lives in src/serve/scenario_build.* so a
// daemon request and a sweep-list row construct scenarios through exactly
// one code path; this header keeps the list-file reader and re-exports the
// serve names under tir::tools for the CLI tools.
#pragma once

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/scenario_build.hpp"
#include "serve/trace_cache.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tir::tools {

namespace fs = std::filesystem;

using serve::build_scenario;
using serve::InputResolver;
using serve::KeyValues;
using serve::parse_double;
using serve::parse_fault;
using serve::parse_int;
using serve::parse_perturb;
using serve::parse_u64;
using serve::SweepEntry;

inline KeyValues parse_tokens(const std::string& line,
                              const fs::path& list_file, std::size_t line_no) {
  KeyValues out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw ParseError(list_file.string() + ":" + std::to_string(line_no) +
                       ": expected key=value, got '" + token + "'");
    out.kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

/// Loads a whole list file (defaults, comments, caching) through `cache`.
/// Throws IoError / ParseError / Error with file:line or scenario-name
/// context. The entries own their TraceSets (shared storage), so the cache
/// may be destroyed afterwards; passing one in lets callers inspect
/// hit/dedup stats or keep it hot across lists.
inline std::vector<SweepEntry> load_sweep_list(const fs::path& list_file,
                                               serve::TraceCache& cache) {
  std::ifstream in(list_file);
  if (!in)
    throw IoError("cannot open scenario list '" + list_file.string() + "'");

  InputResolver resolver(list_file.has_parent_path() ? list_file.parent_path()
                                                     : fs::path("."),
                         cache);

  KeyValues defaults;
  std::vector<SweepEntry> entries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = std::string(str::trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed.rfind("default", 0) == 0 &&
        (trimmed.size() == 7 || trimmed[7] == ' ' || trimmed[7] == '\t')) {
      const KeyValues d = parse_tokens(trimmed.substr(7), list_file, line_no);
      for (const auto& [k, v] : d.kv) defaults.kv[k] = v;
      continue;
    }
    KeyValues kv = defaults;
    const KeyValues own = parse_tokens(trimmed, list_file, line_no);
    for (const auto& [k, v] : own.kv) kv.kv[k] = v;
    entries.push_back(build_scenario(kv, resolver, entries.size()));
  }
  if (entries.empty())
    throw Error("scenario list '" + list_file.string() + "' is empty");
  return entries;
}

inline std::vector<SweepEntry> load_sweep_list(const fs::path& list_file) {
  serve::TraceCache cache;
  return load_sweep_list(list_file, cache);
}

}  // namespace tir::tools
