// tir-sweep — replay many scenarios from one list file (the Table 2 /
// what-if workload as a single command).
//
// Usage:
//   tir-sweep [--workers N] [--format csv|json] [--output FILE] [--obs] LIST
//
// --obs records the span timeline for every scenario and appends per-rank
// average compute / p2p / wait / collective seconds to each result row.
//
// The list file holds one scenario per non-comment line, as whitespace-
// separated key=value pairs:
//
//   name=baseline platform=cluster.xml deployment=depl.xml traces=traces/
//   name=fast-net platform=fast.xml   deployment=depl.xml traces=traces/
//
// Keys:
//   name=LABEL             row label (default scenario-<index>)
//   platform=FILE|SPEC     platform XML, or a topology-registry spec such
//                          as dragonfly:groups=9,routers=4,hosts=2 —
//                          symmetric with fault=: one sweep list can walk
//                          cluster/dragonfly/fattree/torus in one run
//                          (required; the spec is echoed in a `platform`
//                          result column)
//   deployment=FILE|block|roundrobin
//                          deployment XML, or a derived mapping: block
//                          fills hosts contiguously, roundrobin stripes
//                          process i onto host i % host_count (required)
//   traces=A,B,...         per-process trace files in pid order; a single
//                          directory means its SG_process<i>.trace files
//   merged=FILE:N          one merged trace file carrying N processes
//   eager=BYTES            eager/rendezvous switch (e.g. 64KiB)
//   collectives=flat|binomial
//   efficiency=X           compute-rate scale
//   fault=SPEC,...         inject faults mid-replay; each SPEC is
//                          host:NAME:FACTOR@TIME (compute power scaled by
//                          FACTOR from simulated time TIME onwards) or
//                          link:NAME:BWFACTOR[:LATFACTOR]@TIME
//
// A line starting with `default` sets defaults for every later scenario.
// Relative paths resolve against the list file's directory. Platforms,
// deployments and trace sets are cached by path: scenarios sharing a trace
// set share one decoded copy (each file is parsed exactly once per sweep).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "platform/deployment.hpp"
#include "platform/platform_file.hpp"
#include "platform/topology.hpp"
#include "replay/sweep.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

using namespace tir;
namespace fs = std::filesystem;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--format csv|json] [--output FILE] "
               "[--obs] SCENARIOS.list\n"
               "see the header of tools/tir-sweep.cpp for the list format\n",
               argv0);
  std::exit(2);
}

int parse_int(const std::string& what, const std::string& s) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(what + ": expected an integer, got '" + s + "'");
  }
}

double parse_double(const std::string& what, const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(what + ": expected a number, got '" + s + "'");
  }
}

struct KeyValues {
  std::map<std::string, std::string> kv;

  const std::string* find(const std::string& key) const {
    const auto it = kv.find(key);
    return it == kv.end() ? nullptr : &it->second;
  }
};

/// Shared immutable inputs, cached by path so a sweep loads/decodes once.
struct InputCache {
  fs::path base;  ///< list-file directory for relative paths
  std::map<std::string, std::shared_ptr<const plat::Platform>> platforms;
  std::map<std::string, plat::Deployment> deployments;
  std::map<std::string, trace::TraceSet> trace_sets;

  fs::path resolve(const std::string& path) const {
    const fs::path p(path);
    return p.is_absolute() ? p : base / p;
  }

  std::shared_ptr<const plat::Platform> platform(const std::string& spec) {
    auto it = platforms.find(spec);
    if (it == platforms.end()) {
      // Topology specs build through the registry; anything else is a file
      // path and resolves against the list-file directory.
      const std::string head{str::trim(spec.substr(0, spec.find(':')))};
      auto built = plat::is_topology(head)
                       ? plat::make_platform(spec)
                       : plat::load_platform_file(resolve(spec).string());
      it = platforms
               .emplace(spec, std::make_shared<const plat::Platform>(
                                  std::move(built)))
               .first;
    }
    return it->second;
  }

  const plat::Deployment& deployment(const std::string& file) {
    auto it = deployments.find(file);
    if (it == deployments.end())
      it = deployments
               .emplace(file,
                        plat::load_deployment_file(resolve(file).string()))
               .first;
    return it->second;
  }

  trace::TraceSet traces(const std::string& spec, bool merged) {
    const std::string key = (merged ? "merged:" : "split:") + spec;
    auto it = trace_sets.find(key);
    if (it != trace_sets.end()) return it->second;

    trace::TraceSet set;
    if (merged) {
      // merged=FILE:N — one file carrying N process streams.
      const auto colon = spec.rfind(':');
      if (colon == std::string::npos)
        throw Error("merged=" + spec + ": expected FILE:NPROCS");
      set = trace::TraceSet::merged_file(
          resolve(spec.substr(0, colon)),
          parse_int("merged=" + spec, spec.substr(colon + 1)));
    } else {
      std::vector<fs::path> files;
      for (const auto& token : str::split(spec, ',')) {
        const fs::path p = resolve(std::string(token));
        if (fs::is_directory(p)) {
          for (int pid = 0;; ++pid) {
            const fs::path f =
                p / ("SG_process" + std::to_string(pid) + ".trace");
            if (!fs::exists(f)) break;
            files.push_back(f);
          }
        } else {
          files.push_back(p);
        }
      }
      set = trace::TraceSet::per_process_files(std::move(files));
    }
    trace_sets.emplace(key, set);
    return set;
  }
};

KeyValues parse_tokens(const std::string& line, const fs::path& list_file,
                       std::size_t line_no) {
  KeyValues out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw ParseError(list_file.string() + ":" + std::to_string(line_no) +
                       ": expected key=value, got '" + token + "'");
    out.kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

/// Parses one fault entry: host:NAME:FACTOR@TIME or
/// link:NAME:BWFACTOR[:LATFACTOR]@TIME.
replay::FaultSpec parse_fault(const std::string& scenario,
                              const std::string& entry) {
  const std::string what = "scenario '" + scenario + "': fault '" + entry +
                           "'";
  const auto at = entry.rfind('@');
  if (at == std::string::npos)
    throw Error(what + ": missing @TIME");
  replay::FaultSpec fault;
  fault.at_time = parse_double(what + " time", entry.substr(at + 1));

  // Named, not a temporary: split() returns views into this string and a
  // range-for does not lifetime-extend its range initializer.
  const std::string body = entry.substr(0, at);
  std::vector<std::string> parts;
  for (const auto& p : str::split(body, ':'))
    parts.emplace_back(p);
  if (parts.size() < 3) throw Error(what + ": expected kind:NAME:FACTOR");
  fault.target = parts[1];
  if (parts[0] == "host") {
    if (parts.size() != 3) throw Error(what + ": host takes one factor");
    fault.kind = replay::FaultSpec::Kind::host;
    fault.compute_factor = parse_double(what + " factor", parts[2]);
  } else if (parts[0] == "link") {
    if (parts.size() > 4) throw Error(what + ": too many link factors");
    fault.kind = replay::FaultSpec::Kind::link;
    fault.bandwidth_factor = parse_double(what + " bandwidth", parts[2]);
    if (parts.size() == 4)
      fault.latency_factor = parse_double(what + " latency", parts[3]);
  } else {
    throw Error(what + ": kind must be host or link");
  }
  return fault;
}

replay::ScenarioSpec build_scenario(const KeyValues& kv, InputCache& cache,
                                    std::size_t index) {
  replay::ScenarioSpec spec;
  if (const auto* name = kv.find("name"))
    spec.name = *name;
  else
    spec.name = "scenario-" + std::to_string(index);

  const auto* platform = kv.find("platform");
  if (platform == nullptr)
    throw Error("scenario '" + spec.name + "': missing platform=");
  spec.platform = cache.platform(*platform);
  spec.platform_label = *platform;

  if (const auto* merged = kv.find("merged")) {
    spec.traces = cache.traces(*merged, /*merged=*/true);
  } else if (const auto* traces = kv.find("traces")) {
    spec.traces = cache.traces(*traces, /*merged=*/false);
  } else {
    throw Error("scenario '" + spec.name + "': missing traces= or merged=");
  }

  const auto* deployment = kv.find("deployment");
  if (deployment == nullptr)
    throw Error("scenario '" + spec.name + "': missing deployment=");
  if (*deployment == "block" || *deployment == "roundrobin" ||
      *deployment == "rr")
    spec.process_hosts = plat::resolve_deployment_spec(
        *deployment, *spec.platform, spec.traces.nprocs());
  else
    spec.process_hosts =
        cache.deployment(*deployment).resolve(*spec.platform);

  if (const auto* eager = kv.find("eager"))
    spec.config.mpi.eager_threshold = units::parse_bytes(*eager);
  if (const auto* coll = kv.find("collectives")) {
    if (*coll == "flat")
      spec.config.mpi.collectives = mpi::CollectiveAlgo::flat;
    else if (*coll == "binomial")
      spec.config.mpi.collectives = mpi::CollectiveAlgo::binomial;
    else
      throw Error("scenario '" + spec.name + "': unknown collectives '" +
                  *coll + "'");
  }
  if (const auto* eff = kv.find("efficiency"))
    spec.config.compute_efficiency =
        parse_double("scenario '" + spec.name + "': efficiency", *eff);
  if (const auto* fault = kv.find("fault"))
    for (const auto& token : str::split(*fault, ','))
      spec.faults.push_back(parse_fault(spec.name, std::string(token)));
  return spec;
}

/// Per-rank averages over the recorded span totals (the --obs columns).
struct ObsAverages {
  double compute = 0.0, p2p = 0.0, wait = 0.0, collective = 0.0;
};

ObsAverages obs_averages(const obs::Recorder& recorder) {
  const obs::TimelineReport report = obs::analyze(recorder);
  ObsAverages avg;
  if (report.ranks.empty()) return avg;
  for (const auto& r : report.ranks) {
    avg.compute += r.compute;
    avg.p2p += r.p2p;
    avg.wait += r.wait;
    avg.collective += r.collective;
  }
  const double n = static_cast<double>(report.ranks.size());
  avg.compute /= n;
  avg.p2p /= n;
  avg.wait /= n;
  avg.collective /= n;
  return avg;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// One CSV cell: deadlock messages carry commas and newlines, so flatten
/// them rather than quoting (keeps the output trivially line-parseable).
std::string csv_cell(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\n')
      out += "; ";
    else if (c == ',')
      out += ';';
    else
      out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string list_arg, format = "csv", output;
  bool want_obs = false;
  replay::SweepOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--workers") {
      const std::string n = next();
      try {
        options.workers = parse_int("--workers", n);
      } catch (const Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0]);
      }
    } else if (arg == "--format") {
      format = next();
      if (format != "csv" && format != "json") usage(argv[0]);
    } else if (arg == "--output") {
      output = next();
    } else if (arg == "--obs") {
      want_obs = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    } else if (list_arg.empty()) {
      list_arg = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (list_arg.empty()) usage(argv[0]);

  try {
    const fs::path list_file(list_arg);
    std::ifstream in(list_file);
    if (!in)
      throw IoError("cannot open scenario list '" + list_file.string() + "'");

    InputCache cache;
    cache.base = list_file.has_parent_path() ? list_file.parent_path()
                                             : fs::path(".");

    KeyValues defaults;
    std::vector<replay::ScenarioSpec> scenarios;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const auto trimmed = std::string(str::trim(line));
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed.rfind("default", 0) == 0 &&
          (trimmed.size() == 7 || trimmed[7] == ' ' || trimmed[7] == '\t')) {
        const KeyValues d =
            parse_tokens(trimmed.substr(7), list_file, line_no);
        for (const auto& [k, v] : d.kv) defaults.kv[k] = v;
        continue;
      }
      KeyValues kv = defaults;
      const KeyValues own = parse_tokens(trimmed, list_file, line_no);
      for (const auto& [k, v] : own.kv) kv.kv[k] = v;
      scenarios.push_back(build_scenario(kv, cache, scenarios.size()));
    }
    if (scenarios.empty())
      throw Error("scenario list '" + list_file.string() + "' is empty");
    if (want_obs)
      for (auto& spec : scenarios) spec.config.record_spans = true;

    const replay::SweepRunner runner(options);
    std::fprintf(stderr, "tir-sweep: %zu scenario(s) on %d worker(s)\n",
                 scenarios.size(), runner.effective_workers(scenarios.size()));
    const auto results = runner.run(scenarios);

    std::ostringstream os;
    if (format == "csv") {
      os << "name,platform,status,processes,actions_replayed,simulated_time,"
            "coverage,error";
      if (want_obs) os << ",avg_compute,avg_p2p,avg_wait,avg_collective";
      os << '\n';
      for (const auto& r : results) {
        os << r.name << ',' << csv_cell(r.platform) << ','
           << replay::to_string(r.status) << ','
           << r.replay.process_finish_times.size() << ','
           << r.replay.actions_replayed << ',';
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9f", r.replay.simulated_time);
        os << (r.ok ? buf : "") << ',';
        std::snprintf(buf, sizeof buf, "%.6f", r.coverage);
        os << buf << ',' << (r.ok ? "" : csv_cell(r.error));
        if (want_obs) {
          if (r.replay.spans) {
            const ObsAverages avg = obs_averages(*r.replay.spans);
            for (const double v :
                 {avg.compute, avg.p2p, avg.wait, avg.collective}) {
              std::snprintf(buf, sizeof buf, "%.9f", v);
              os << ',' << buf;
            }
          } else {
            os << ",,,,";
          }
        }
        os << '\n';
      }
    } else {
      os << "[\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6f", r.coverage);
        os << "  {\"name\": \"" << json_escape(r.name) << "\", \"platform\": \""
           << json_escape(r.platform) << "\", \"ok\": "
           << (r.ok ? "true" : "false") << ", \"status\": \""
           << replay::to_string(r.status) << "\", \"coverage\": " << buf;
        if (r.ok) {
          std::snprintf(buf, sizeof buf, "%.9f", r.replay.simulated_time);
          os << ", \"processes\": " << r.replay.process_finish_times.size()
             << ", \"actions_replayed\": " << r.replay.actions_replayed
             << ", \"simulated_time\": " << buf;
          if (want_obs && r.replay.spans) {
            const ObsAverages avg = obs_averages(*r.replay.spans);
            const auto field = [&](const char* key, double v) {
              std::snprintf(buf, sizeof buf, "%.9f", v);
              os << ", \"" << key << "\": " << buf;
            };
            field("avg_compute", avg.compute);
            field("avg_p2p", avg.p2p);
            field("avg_wait", avg.wait);
            field("avg_collective", avg.collective);
          }
        } else {
          os << ", \"error\": \"" << json_escape(r.error) << "\"";
          if (!r.diagnostics.empty()) {
            os << ", \"diagnostics\": [";
            for (std::size_t d = 0; d < r.diagnostics.size(); ++d)
              os << (d ? ", " : "") << "\"" << json_escape(r.diagnostics[d])
                 << "\"";
            os << "]";
          }
        }
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
      }
      os << "]\n";
    }

    if (output.empty()) {
      std::fputs(os.str().c_str(), stdout);
    } else {
      std::ofstream out(output);
      if (!out) throw IoError("cannot write '" + output + "'");
      out << os.str();
    }

    // Any failed scenario fails the sweep — a mid-list deadlock must not
    // exit 0 just because the remaining rows came out fine.
    std::size_t failed = 0;
    for (const auto& r : results)
      if (!r.ok) ++failed;
    if (failed > 0) {
      std::fprintf(stderr, "error: %zu of %zu scenario(s) failed\n", failed,
                   results.size());
      return 1;
    }
  } catch (const IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
