// tir-sweep — replay many scenarios from one list file (the Table 2 /
// what-if workload as a single command).
//
// Usage:
//   tir-sweep [--workers N] [--format csv|json] [--output FILE] [--obs] LIST
//
// --obs records the span timeline for every scenario and appends per-rank
// average compute / p2p / wait / collective seconds to each result row.
//
// The list format (key=value pairs, `default` lines, path caching) is
// documented in tools/sweep_list.hpp. Beyond the deterministic keys, a row
// may carry a stochastic envelope:
//
//   perturb=hostnoise:0.05,bwnoise:0.02   platform variability model
//   mc=100                                Monte-Carlo replica count
//   seed=42                               sweep seed (default 1)
//
// A row with mc=N expands into N replica rows (name#r0 .. name#rN-1), each
// replaying a concrete fault timeline derived deterministically from
// (seed, replica) — plus the unperturbed name#baseline row. A row with
// perturb= but no mc= replays replica 0 only (one deterministic perturbed
// row). For aggregated mean/CI/sensitivity over the replicas, use tir-mc
// over the same list.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "replay/perturb.hpp"
#include "replay/sweep.hpp"
#include "serve/scenario_build.hpp"
#include "serve/trace_cache.hpp"
#include "sweep_list.hpp"

using namespace tir;
namespace fs = std::filesystem;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--format csv|json] [--output FILE] "
               "[--obs] SCENARIOS.list\n"
               "see the header of tools/sweep_list.hpp for the list format\n",
               argv0);
  std::exit(2);
}

/// Expands the parsed entries into the flat scenario vector the runner
/// consumes: deterministic rows pass through; perturbed rows bake their
/// replica fault timelines through the same serve::bake_replica the daemon
/// uses for replica= requests.
std::vector<replay::ScenarioSpec> expand_entries(
    const std::vector<tools::SweepEntry>& entries) {
  std::vector<replay::ScenarioSpec> scenarios;
  for (const tools::SweepEntry& entry : entries) {
    if (!entry.has_perturb || entry.perturb.empty()) {
      scenarios.push_back(entry.spec);
      continue;
    }
    const int replicas = entry.mc > 0 ? entry.mc : 1;
    for (int r = 0; r < replicas; ++r)
      scenarios.push_back(serve::bake_replica(entry, r));
    if (entry.mc > 0) {
      replay::ScenarioSpec spec = entry.spec;
      spec.name = entry.spec.name + "#baseline";
      scenarios.push_back(std::move(spec));
    }
  }
  return scenarios;
}

/// Per-rank averages over the recorded span totals (the --obs columns).
struct ObsAverages {
  double compute = 0.0, p2p = 0.0, wait = 0.0, collective = 0.0;
};

ObsAverages obs_averages(const obs::Recorder& recorder) {
  const obs::TimelineReport report = obs::analyze(recorder);
  ObsAverages avg;
  if (report.ranks.empty()) return avg;
  for (const auto& r : report.ranks) {
    avg.compute += r.compute;
    avg.p2p += r.p2p;
    avg.wait += r.wait;
    avg.collective += r.collective;
  }
  const double n = static_cast<double>(report.ranks.size());
  avg.compute /= n;
  avg.p2p /= n;
  avg.wait /= n;
  avg.collective /= n;
  return avg;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// One CSV cell: deadlock messages carry commas and newlines, so flatten
/// them rather than quoting (keeps the output trivially line-parseable).
std::string csv_cell(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\n')
      out += "; ";
    else if (c == ',')
      out += ';';
    else
      out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string list_arg, format = "csv", output;
  bool want_obs = false;
  replay::SweepOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--workers") {
      const std::string n = next();
      try {
        options.workers = tools::parse_int("--workers", n);
      } catch (const Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0]);
      }
    } else if (arg == "--format") {
      format = next();
      if (format != "csv" && format != "json") usage(argv[0]);
    } else if (arg == "--output") {
      output = next();
    } else if (arg == "--obs") {
      want_obs = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    } else if (list_arg.empty()) {
      list_arg = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (list_arg.empty()) usage(argv[0]);

  try {
    const fs::path list_file(list_arg);
    serve::TraceCache trace_cache;
    std::vector<replay::ScenarioSpec> scenarios =
        expand_entries(tools::load_sweep_list(list_file, trace_cache));
    if (want_obs)
      for (auto& spec : scenarios) spec.config.record_spans = true;

    const replay::SweepRunner runner(options);
    const serve::TraceCacheStats tstats = trace_cache.stats();
    std::fprintf(stderr,
                 "tir-sweep: %zu scenario(s) on %d worker(s); traces: "
                 "%llu decode(s), %llu cache hit(s), %llu content dedup(s)\n",
                 scenarios.size(), runner.effective_workers(scenarios.size()),
                 static_cast<unsigned long long>(tstats.misses),
                 static_cast<unsigned long long>(tstats.hits),
                 static_cast<unsigned long long>(tstats.dedups));
    const auto results = runner.run(scenarios);

    std::ostringstream os;
    if (format == "csv") {
      os << "name,platform,status,processes,actions_replayed,simulated_time,"
            "coverage,error";
      if (want_obs) os << ",avg_compute,avg_p2p,avg_wait,avg_collective";
      os << '\n';
      for (const auto& r : results) {
        os << r.name << ',' << csv_cell(r.platform) << ','
           << replay::to_string(r.status) << ','
           << r.replay.process_finish_times.size() << ','
           << r.replay.actions_replayed << ',';
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9f", r.replay.simulated_time);
        os << (r.ok ? buf : "") << ',';
        std::snprintf(buf, sizeof buf, "%.6f", r.coverage);
        os << buf << ',' << (r.ok ? "" : csv_cell(r.error));
        if (want_obs) {
          if (r.replay.spans) {
            const ObsAverages avg = obs_averages(*r.replay.spans);
            for (const double v :
                 {avg.compute, avg.p2p, avg.wait, avg.collective}) {
              std::snprintf(buf, sizeof buf, "%.9f", v);
              os << ',' << buf;
            }
          } else {
            os << ",,,,";
          }
        }
        os << '\n';
      }
    } else {
      os << "[\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6f", r.coverage);
        os << "  {\"name\": \"" << json_escape(r.name) << "\", \"platform\": \""
           << json_escape(r.platform) << "\", \"ok\": "
           << (r.ok ? "true" : "false") << ", \"status\": \""
           << replay::to_string(r.status) << "\", \"coverage\": " << buf;
        if (r.ok) {
          std::snprintf(buf, sizeof buf, "%.9f", r.replay.simulated_time);
          os << ", \"processes\": " << r.replay.process_finish_times.size()
             << ", \"actions_replayed\": " << r.replay.actions_replayed
             << ", \"simulated_time\": " << buf;
          if (want_obs && r.replay.spans) {
            const ObsAverages avg = obs_averages(*r.replay.spans);
            const auto field = [&](const char* key, double v) {
              std::snprintf(buf, sizeof buf, "%.9f", v);
              os << ", \"" << key << "\": " << buf;
            };
            field("avg_compute", avg.compute);
            field("avg_p2p", avg.p2p);
            field("avg_wait", avg.wait);
            field("avg_collective", avg.collective);
          }
        } else {
          os << ", \"error\": \"" << json_escape(r.error) << "\"";
          if (!r.diagnostics.empty()) {
            os << ", \"diagnostics\": [";
            for (std::size_t d = 0; d < r.diagnostics.size(); ++d)
              os << (d ? ", " : "") << "\"" << json_escape(r.diagnostics[d])
                 << "\"";
            os << "]";
          }
        }
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
      }
      os << "]\n";
    }

    if (output.empty()) {
      std::fputs(os.str().c_str(), stdout);
    } else {
      std::ofstream out(output);
      if (!out) throw IoError("cannot write '" + output + "'");
      out << os.str();
    }

    // Any failed scenario fails the sweep — a mid-list deadlock must not
    // exit 0 just because the remaining rows came out fine.
    std::size_t failed = 0;
    for (const auto& r : results)
      if (!r.ok) ++failed;
    if (failed > 0) {
      std::fprintf(stderr, "error: %zu of %zu scenario(s) failed\n", failed,
                   results.size());
      return 1;
    }
  } catch (const IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
