// tir-timeline — replay once, render the per-rank simulated timeline.
//
// Runs the Figure 4 replay workflow with the observability recorder on and
// prints the in-memory report (per-rank compute/p2p/wait/collective totals
// and the critical path through the recorded span graph). Optionally dumps
// the timeline as Chrome trace-event JSON (chrome://tracing, Perfetto) or
// as a Paje trace (Vite — the format SimGrid's own replayer emits).
//
// Usage:
//   tir-timeline --platform platform.xml --deployment deployment.xml
//                trace0 trace1 ... [options]
//
// --platform also accepts a topology-registry spec ("torus:dims=4x4x4") and
// --deployment the derived mappings "block" / "roundrobin", exactly like
// tir-replay — handy for comparing critical paths across topologies.
//
// Options:
//   --chrome FILE             write a Chrome trace-event JSON file
//   --paje FILE               write a Paje trace file
//   --detail                  also record kernel activity (per-host tracks:
//                             every Exec/Transfer; voluminous)
//   --path-rows N             critical-path rows to print (default 20)
//   --eager-threshold BYTES   eager/rendezvous switch (default 64KiB)
//   --collectives flat|binomial
//   --efficiency X            compute-rate scale (default 1.0)
//   --fast-path               run deterministic action chains inline without
//                             coroutine switches (bit-identical results)
//   --shards N                solve disconnected network components on N OS
//                             threads (bit-identical results; default 1)
#include <cstdio>
#include <string>
#include <vector>

#include "obs/chrome_export.hpp"
#include "obs/paje_export.hpp"
#include "obs/report.hpp"
#include "replay/replayer.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

using namespace tir;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --platform FILE|TOPOSPEC "
               "--deployment FILE|block|roundrobin TRACE...|TRACEDIR \n"
               "  [--chrome FILE] [--paje FILE] [--detail] [--path-rows N]\n"
               "  [--eager-threshold BYTES] [--collectives flat|binomial]\n"
               "  [--efficiency X] [--fast-path] [--shards N]\n",
               argv0);
  std::exit(2);
}

double parse_double_flag(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing text");
    return value;
  } catch (const std::exception&) {
    throw ParseError("invalid value '" + text + "' for " + flag);
  }
}

int run(int argc, char** argv) {
  std::string platform_file, deployment_file, chrome_file, paje_file;
  std::vector<std::filesystem::path> traces;
  replay::ReplayConfig config;
  config.record_spans = true;
  std::size_t path_rows = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--platform") {
      platform_file = next();
    } else if (arg == "--deployment") {
      deployment_file = next();
    } else if (arg == "--chrome") {
      chrome_file = next();
    } else if (arg == "--paje") {
      paje_file = next();
    } else if (arg == "--detail") {
      config.span_activity_detail = true;
    } else if (arg == "--path-rows") {
      path_rows = static_cast<std::size_t>(
          parse_double_flag("--path-rows", next()));
    } else if (arg == "--eager-threshold") {
      config.mpi.eager_threshold = units::parse_bytes(next());
    } else if (arg == "--collectives") {
      const std::string algo = next();
      if (algo == "flat") {
        config.mpi.collectives = mpi::CollectiveAlgo::flat;
      } else if (algo == "binomial") {
        config.mpi.collectives = mpi::CollectiveAlgo::binomial;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--efficiency") {
      config.compute_efficiency = parse_double_flag("--efficiency", next());
    } else if (arg == "--fast-path") {
      config.fast_path = true;
    } else if (arg == "--shards") {
      const std::string text = next();
      const double value = parse_double_flag("--shards", text);
      if (value < 1 || value > 512 || value != static_cast<int>(value))
        throw ParseError("invalid value '" + text +
                         "' for --shards (integer in [1, 512])");
      config.shards = static_cast<int>(value);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    } else {
      traces.emplace_back(arg);
    }
  }
  if (platform_file.empty() || deployment_file.empty() || traces.empty())
    usage(argv[0]);

  const auto result =
      replay::replay_files(platform_file, deployment_file, traces, config);
  if (!result.spans) throw SimError("replay returned no span timeline");
  const obs::Recorder& recorder = *result.spans;

  std::printf("processes:        %zu\n", traces.size());
  std::printf("actions replayed: %llu\n",
              static_cast<unsigned long long>(result.actions_replayed));
  std::printf("simulated time:   %.6f s\n", result.simulated_time);
  std::printf("spans recorded:   %llu (%zu edges, %zu faults)\n",
              static_cast<unsigned long long>(recorder.total_spans()),
              recorder.edges().size(), recorder.faults().size());

  const obs::TimelineReport report = obs::analyze(recorder);
  std::printf("\n%s", report.render(path_rows).c_str());

  if (!chrome_file.empty()) {
    obs::write_chrome_trace_file(recorder, chrome_file);
    std::printf("\nchrome trace:     %s\n", chrome_file.c_str());
  }
  if (!paje_file.empty()) {
    obs::write_paje_trace_file(recorder, paje_file);
    std::printf("%spaje trace:       %s\n", chrome_file.empty() ? "\n" : "",
                paje_file.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Input problems (unreadable files, malformed traces, bad flag values)
  // exit 2; simulation failures (deadlock, bad deployment) exit 1. Either
  // way: one `error:` line on stderr, never an uncaught exception.
  try {
    return run(argc, argv);
  } catch (const IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
