// tir-gentrace — synthetic NPB-style trace generation for scale testing.
//
// Usage:
//   tir-gentrace --out DIR [--pattern ft|cg] [--ranks N]
//                [--iterations K] [--codec compact|text|binary]
//                [--flops F] [--bytes B]
//
// Writes one SG_process<i>.trace per rank under DIR (created if missing)
// and prints the per-rank file list plus the total logical action count.
// The default compact codec serialises the iteration loop as a TIRC repeat
// block, so a 10^8-action trace is a few hundred bytes on disk and replays
// through the streaming decoder without ever being materialised — the
// input generator for bench_large_trace and the stream test battery.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "support/error.hpp"
#include "trace/synthetic.hpp"

using namespace tir;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out DIR [--pattern ft|cg] [--ranks N]\n"
               "  [--iterations K] [--codec compact|text|binary]\n"
               "  [--flops F] [--bytes B]\n",
               argv0);
  std::exit(2);
}

double parse_double_flag(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing text");
    return value;
  } catch (const std::exception&) {
    throw ParseError("invalid value '" + text + "' for " + flag);
  }
}

std::uint64_t parse_u64_flag(const std::string& flag, const std::string& text) {
  const double value = parse_double_flag(flag, text);
  if (value < 1 || value != static_cast<std::uint64_t>(value))
    throw ParseError("invalid value '" + text + "' for " + flag +
                     " (positive integer)");
  return static_cast<std::uint64_t>(value);
}

int run(int argc, char** argv) {
  std::string out_dir;
  std::string codec = "compact";
  trace::SyntheticSpec spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--pattern") {
      spec.pattern = trace::parse_synthetic_pattern(next());
    } else if (arg == "--ranks") {
      spec.nprocs =
          static_cast<int>(parse_u64_flag("--ranks", next()));
    } else if (arg == "--iterations") {
      spec.iterations = parse_u64_flag("--iterations", next());
    } else if (arg == "--codec") {
      codec = next();
    } else if (arg == "--flops") {
      spec.compute_flops = parse_double_flag("--flops", next());
    } else if (arg == "--bytes") {
      spec.message_bytes = parse_double_flag("--bytes", next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (out_dir.empty()) usage(argv[0]);

  const auto paths = trace::write_synthetic_traces(out_dir, spec, codec);
  for (const auto& p : paths) std::printf("%s\n", p.string().c_str());
  std::printf("ranks:   %d\n", spec.nprocs);
  std::printf("actions: %" PRIu64 "\n", trace::synthetic_actions(spec));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
