// tir-replay — the Figure 4 workflow as a command-line tool.
//
// Usage:
//   tir-replay --platform platform.xml --deployment deployment.xml ...
//              trace0 trace1 ... [options]
//
// --platform also accepts a topology-registry spec instead of a file, e.g.
// "dragonfly:groups=9,routers=4,hosts=2" or "fattree:k=8" (see
// src/platform/topology.hpp); --deployment accepts "block" / "roundrobin"
// to derive the process->host mapping instead of reading a file.
//
// Options:
//   --eager-threshold BYTES   eager/rendezvous switch (default 64KiB)
//   --collectives flat|binomial
//   --timed-trace FILE        also write the timed trace
//   --profile                 print a per-action profile
//   --efficiency X            compute-rate scale (default 1.0)
//   --stats                   print engine counters (solver work, events)
//   --full-solve              disable the incremental network solver
//                             (reference path for differential testing)
//   --fast-path               run deterministic action chains inline without
//                             coroutine switches (bit-identical results)
//   --shards N                solve disconnected network components on N OS
//                             threads (bit-identical results; default 1)
//   --decode stream|materialise|auto
//                             trace decode path: "stream" replays through a
//                             bounded-memory offset index without loading
//                             the actions, "materialise" decodes fully up
//                             front, "auto" (default) streams only when the
//                             trace is large (bit-identical either way)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "replay/replayer.hpp"
#include "replay/timed_trace.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

using namespace tir;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --platform FILE|TOPOSPEC "
               "--deployment FILE|block|roundrobin TRACE...|TRACEDIR \n"
               "  [--eager-threshold BYTES] [--collectives flat|binomial]\n"
               "  [--timed-trace FILE] [--profile] [--efficiency X]\n"
               "  [--stats] [--full-solve] [--fast-path] [--shards N]\n"
               "  [--decode stream|materialise|auto]\n",
               argv0);
  std::exit(2);
}

double parse_double_flag(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing text");
    return value;
  } catch (const std::exception&) {
    throw ParseError("invalid value '" + text + "' for " + flag);
  }
}

int run(int argc, char** argv) {
  std::string platform_file, deployment_file, timed_file;
  std::vector<std::filesystem::path> traces;
  replay::ReplayConfig config;
  auto decode = trace::DecodePolicy::automatic;
  bool want_profile = false;
  bool want_stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--platform") {
      platform_file = next();
    } else if (arg == "--deployment") {
      deployment_file = next();
    } else if (arg == "--eager-threshold") {
      config.mpi.eager_threshold = units::parse_bytes(next());
    } else if (arg == "--collectives") {
      const std::string algo = next();
      if (algo == "flat") {
        config.mpi.collectives = mpi::CollectiveAlgo::flat;
      } else if (algo == "binomial") {
        config.mpi.collectives = mpi::CollectiveAlgo::binomial;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--timed-trace") {
      timed_file = next();
      config.record_timed_trace = true;
    } else if (arg == "--profile") {
      want_profile = true;
      config.record_timed_trace = true;
    } else if (arg == "--efficiency") {
      config.compute_efficiency = parse_double_flag("--efficiency", next());
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--full-solve") {
      config.full_solve = true;
    } else if (arg == "--fast-path") {
      config.fast_path = true;
    } else if (arg == "--shards") {
      const std::string text = next();
      const double value = parse_double_flag("--shards", text);
      if (value < 1 || value > 512 || value != static_cast<int>(value))
        throw ParseError("invalid value '" + text +
                         "' for --shards (integer in [1, 512])");
      config.shards = static_cast<int>(value);
    } else if (arg == "--decode") {
      decode = trace::parse_decode_policy(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    } else {
      traces.emplace_back(arg);
    }
  }
  if (platform_file.empty() || deployment_file.empty() || traces.empty())
    usage(argv[0]);

  const auto result = replay::replay_files(platform_file, deployment_file,
                                           traces, config, decode);
  std::printf("processes:        %zu\n", traces.size());
  std::printf("actions replayed: %llu\n",
              static_cast<unsigned long long>(result.actions_replayed));
  std::printf("simulated time:   %.6f s\n", result.simulated_time);
  if (!timed_file.empty()) {
    replay::write_timed_trace(result.timed_trace, timed_file);
    std::printf("timed trace:      %s (%zu rows)\n", timed_file.c_str(),
                result.timed_trace.size());
  }
  if (want_stats) {
    const auto& st = result.engine_stats;
    const auto u64 = [](std::uint64_t v) {
      return static_cast<unsigned long long>(v);
    };
    std::printf("\nengine stats:\n");
    std::printf("  coroutine resumes:      %llu\n", u64(st.resumes));
    std::printf("  activities created:     %llu\n", u64(st.activities));
    std::printf("  timed heap events:      %llu\n", u64(st.heap_events));
    std::printf("  network solver calls:   %llu\n", u64(st.solver_calls));
    std::printf("  solver vars touched:    %llu\n",
                u64(st.solver_vars_touched));
    std::printf("  max component size:     %llu\n",
                u64(st.solver_component_size_max));
    std::printf("  flows re-rated:         %llu\n", u64(st.flows_rerated));
    std::printf("  fast-path inline:       %llu\n", u64(st.fast_path_inline));
    std::printf("  fast-path ready:        %llu\n", u64(st.fast_path_ready));
    std::printf("  parallel solver fills:  %llu\n",
                u64(st.solver_parallel_fills));
  }
  if (want_profile) {
    const auto profile = replay::Profile::from_timed_trace(result.timed_trace);
    std::printf("\n%s", profile.render().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Input problems (unreadable files, malformed traces, bad flag values)
  // exit 2; simulation failures (deadlock, bad deployment) exit 1. Either
  // way: one `error:` line on stderr, never an uncaught exception.
  try {
    return run(argc, argv);
  } catch (const IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
