file(REMOVE_RECURSE
  "CMakeFiles/bench_large_trace.dir/bench_large_trace.cpp.o"
  "CMakeFiles/bench_large_trace.dir/bench_large_trace.cpp.o.d"
  "bench_large_trace"
  "bench_large_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
