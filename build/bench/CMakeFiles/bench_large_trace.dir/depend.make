# Empty dependencies file for bench_large_trace.
# This may be replaced when dependencies are built.
