file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_replaytime.dir/bench_fig9_replaytime.cpp.o"
  "CMakeFiles/bench_fig9_replaytime.dir/bench_fig9_replaytime.cpp.o.d"
  "bench_fig9_replaytime"
  "bench_fig9_replaytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_replaytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
