# Empty dependencies file for bench_fig9_replaytime.
# This may be replaced when dependencies are built.
