# Empty dependencies file for bench_extra_apps.
# This may be replaced when dependencies are built.
