file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_apps.dir/bench_extra_apps.cpp.o"
  "CMakeFiles/bench_extra_apps.dir/bench_extra_apps.cpp.o.d"
  "bench_extra_apps"
  "bench_extra_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
