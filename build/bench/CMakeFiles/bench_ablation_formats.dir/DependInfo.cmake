
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_formats.cpp" "bench/CMakeFiles/bench_ablation_formats.dir/bench_ablation_formats.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_formats.dir/bench_ablation_formats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replay/CMakeFiles/tir_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/acquisition/CMakeFiles/tir_acquisition.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tir_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/tir_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tir_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/tir_simkern.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tir_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tir_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
