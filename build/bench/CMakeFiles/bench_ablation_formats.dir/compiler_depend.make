# Empty compiler generated dependencies file for bench_ablation_formats.
# This may be replaced when dependencies are built.
