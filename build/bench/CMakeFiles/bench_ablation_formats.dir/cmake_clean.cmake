file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_formats.dir/bench_ablation_formats.cpp.o"
  "CMakeFiles/bench_ablation_formats.dir/bench_ablation_formats.cpp.o.d"
  "bench_ablation_formats"
  "bench_ablation_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
