# Empty dependencies file for bench_fig7_acquisition.
# This may be replaced when dependencies are built.
