file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_acquisition.dir/bench_fig7_acquisition.cpp.o"
  "CMakeFiles/bench_fig7_acquisition.dir/bench_fig7_acquisition.cpp.o.d"
  "bench_fig7_acquisition"
  "bench_fig7_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
