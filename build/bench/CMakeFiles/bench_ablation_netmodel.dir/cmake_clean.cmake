file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_netmodel.dir/bench_ablation_netmodel.cpp.o"
  "CMakeFiles/bench_ablation_netmodel.dir/bench_ablation_netmodel.cpp.o.d"
  "bench_ablation_netmodel"
  "bench_ablation_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
