# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "/root/repo/build/examples/quickstart_work")
set_tests_properties(example_quickstart PROPERTIES  FIXTURES_SETUP "quickstart_output" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lu_dimensioning "/root/repo/build/examples/lu_dimensioning" "/root/repo/build/examples/dimensioning_work")
set_tests_properties(example_lu_dimensioning PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_whatif_scenarios "/root/repo/build/examples/whatif_scenarios" "/root/repo/build/examples/whatif_work")
set_tests_properties(example_whatif_scenarios PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil_scattering "/root/repo/build/examples/stencil_scattering" "/root/repo/build/examples/scatter_work")
set_tests_properties(example_stencil_scattering PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
