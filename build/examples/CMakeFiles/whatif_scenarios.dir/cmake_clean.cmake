file(REMOVE_RECURSE
  "CMakeFiles/whatif_scenarios.dir/whatif_scenarios.cpp.o"
  "CMakeFiles/whatif_scenarios.dir/whatif_scenarios.cpp.o.d"
  "whatif_scenarios"
  "whatif_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
