# Empty dependencies file for stencil_scattering.
# This may be replaced when dependencies are built.
