file(REMOVE_RECURSE
  "CMakeFiles/stencil_scattering.dir/stencil_scattering.cpp.o"
  "CMakeFiles/stencil_scattering.dir/stencil_scattering.cpp.o.d"
  "stencil_scattering"
  "stencil_scattering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_scattering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
