# Empty dependencies file for lu_dimensioning.
# This may be replaced when dependencies are built.
