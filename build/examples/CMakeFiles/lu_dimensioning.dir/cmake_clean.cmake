file(REMOVE_RECURSE
  "CMakeFiles/lu_dimensioning.dir/lu_dimensioning.cpp.o"
  "CMakeFiles/lu_dimensioning.dir/lu_dimensioning.cpp.o.d"
  "lu_dimensioning"
  "lu_dimensioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_dimensioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
