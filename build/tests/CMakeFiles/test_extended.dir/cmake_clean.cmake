file(REMOVE_RECURSE
  "CMakeFiles/test_extended.dir/compact_trace_test.cpp.o"
  "CMakeFiles/test_extended.dir/compact_trace_test.cpp.o.d"
  "CMakeFiles/test_extended.dir/edge_cases_test.cpp.o"
  "CMakeFiles/test_extended.dir/edge_cases_test.cpp.o.d"
  "CMakeFiles/test_extended.dir/extended_collectives_test.cpp.o"
  "CMakeFiles/test_extended.dir/extended_collectives_test.cpp.o.d"
  "CMakeFiles/test_extended.dir/timed_trace_test.cpp.o"
  "CMakeFiles/test_extended.dir/timed_trace_test.cpp.o.d"
  "CMakeFiles/test_extended.dir/trace_property_test.cpp.o"
  "CMakeFiles/test_extended.dir/trace_property_test.cpp.o.d"
  "test_extended"
  "test_extended.pdb"
  "test_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
