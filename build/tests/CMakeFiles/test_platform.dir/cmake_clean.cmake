file(REMOVE_RECURSE
  "CMakeFiles/test_platform.dir/platform_files_test.cpp.o"
  "CMakeFiles/test_platform.dir/platform_files_test.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform_netmodel_test.cpp.o"
  "CMakeFiles/test_platform.dir/platform_netmodel_test.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform_routing_test.cpp.o"
  "CMakeFiles/test_platform.dir/platform_routing_test.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform_xml_test.cpp.o"
  "CMakeFiles/test_platform.dir/platform_xml_test.cpp.o.d"
  "test_platform"
  "test_platform.pdb"
  "test_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
