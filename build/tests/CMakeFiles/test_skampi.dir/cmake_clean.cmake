file(REMOVE_RECURSE
  "CMakeFiles/test_skampi.dir/skampi_test.cpp.o"
  "CMakeFiles/test_skampi.dir/skampi_test.cpp.o.d"
  "test_skampi"
  "test_skampi.pdb"
  "test_skampi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
