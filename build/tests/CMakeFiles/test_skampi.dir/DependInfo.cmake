
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/skampi_test.cpp" "tests/CMakeFiles/test_skampi.dir/skampi_test.cpp.o" "gcc" "tests/CMakeFiles/test_skampi.dir/skampi_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/skampi/CMakeFiles/tir_skampi.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tir_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/tir_simkern.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tir_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
