# Empty dependencies file for test_skampi.
# This may be replaced when dependencies are built.
