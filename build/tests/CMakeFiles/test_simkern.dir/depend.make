# Empty dependencies file for test_simkern.
# This may be replaced when dependencies are built.
