file(REMOVE_RECURSE
  "CMakeFiles/test_simkern.dir/simkern_engine_test.cpp.o"
  "CMakeFiles/test_simkern.dir/simkern_engine_test.cpp.o.d"
  "CMakeFiles/test_simkern.dir/simkern_maxmin_test.cpp.o"
  "CMakeFiles/test_simkern.dir/simkern_maxmin_test.cpp.o.d"
  "CMakeFiles/test_simkern.dir/simkern_scheduler_test.cpp.o"
  "CMakeFiles/test_simkern.dir/simkern_scheduler_test.cpp.o.d"
  "test_simkern"
  "test_simkern.pdb"
  "test_simkern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simkern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
