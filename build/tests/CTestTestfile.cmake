# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_simkern[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_acquisition[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_skampi[1]_include.cmake")
include("/root/repo/build/tests/test_extended[1]_include.cmake")
