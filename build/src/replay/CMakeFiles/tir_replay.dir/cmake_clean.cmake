file(REMOVE_RECURSE
  "CMakeFiles/tir_replay.dir/calibration.cpp.o"
  "CMakeFiles/tir_replay.dir/calibration.cpp.o.d"
  "CMakeFiles/tir_replay.dir/registry.cpp.o"
  "CMakeFiles/tir_replay.dir/registry.cpp.o.d"
  "CMakeFiles/tir_replay.dir/replayer.cpp.o"
  "CMakeFiles/tir_replay.dir/replayer.cpp.o.d"
  "CMakeFiles/tir_replay.dir/timed_trace.cpp.o"
  "CMakeFiles/tir_replay.dir/timed_trace.cpp.o.d"
  "libtir_replay.a"
  "libtir_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
