# Empty dependencies file for tir_replay.
# This may be replaced when dependencies are built.
