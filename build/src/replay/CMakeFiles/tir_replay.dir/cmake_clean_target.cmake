file(REMOVE_RECURSE
  "libtir_replay.a"
)
