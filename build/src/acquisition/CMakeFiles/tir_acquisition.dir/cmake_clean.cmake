file(REMOVE_RECURSE
  "CMakeFiles/tir_acquisition.dir/acquisition.cpp.o"
  "CMakeFiles/tir_acquisition.dir/acquisition.cpp.o.d"
  "CMakeFiles/tir_acquisition.dir/gather.cpp.o"
  "CMakeFiles/tir_acquisition.dir/gather.cpp.o.d"
  "CMakeFiles/tir_acquisition.dir/instrumented.cpp.o"
  "CMakeFiles/tir_acquisition.dir/instrumented.cpp.o.d"
  "CMakeFiles/tir_acquisition.dir/tau2ti.cpp.o"
  "CMakeFiles/tir_acquisition.dir/tau2ti.cpp.o.d"
  "libtir_acquisition.a"
  "libtir_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
