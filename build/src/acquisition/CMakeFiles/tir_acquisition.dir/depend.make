# Empty dependencies file for tir_acquisition.
# This may be replaced when dependencies are built.
