file(REMOVE_RECURSE
  "libtir_acquisition.a"
)
