
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tau/tau_reader.cpp" "src/tau/CMakeFiles/tir_tau.dir/tau_reader.cpp.o" "gcc" "src/tau/CMakeFiles/tir_tau.dir/tau_reader.cpp.o.d"
  "/root/repo/src/tau/tau_writer.cpp" "src/tau/CMakeFiles/tir_tau.dir/tau_writer.cpp.o" "gcc" "src/tau/CMakeFiles/tir_tau.dir/tau_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
