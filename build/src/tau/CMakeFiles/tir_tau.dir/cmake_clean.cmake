file(REMOVE_RECURSE
  "CMakeFiles/tir_tau.dir/tau_reader.cpp.o"
  "CMakeFiles/tir_tau.dir/tau_reader.cpp.o.d"
  "CMakeFiles/tir_tau.dir/tau_writer.cpp.o"
  "CMakeFiles/tir_tau.dir/tau_writer.cpp.o.d"
  "libtir_tau.a"
  "libtir_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
