file(REMOVE_RECURSE
  "libtir_tau.a"
)
