# Empty compiler generated dependencies file for tir_tau.
# This may be replaced when dependencies are built.
