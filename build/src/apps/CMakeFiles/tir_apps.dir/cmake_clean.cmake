file(REMOVE_RECURSE
  "CMakeFiles/tir_apps.dir/lu.cpp.o"
  "CMakeFiles/tir_apps.dir/lu.cpp.o.d"
  "CMakeFiles/tir_apps.dir/npb_extra.cpp.o"
  "CMakeFiles/tir_apps.dir/npb_extra.cpp.o.d"
  "CMakeFiles/tir_apps.dir/ring.cpp.o"
  "CMakeFiles/tir_apps.dir/ring.cpp.o.d"
  "CMakeFiles/tir_apps.dir/stencil.cpp.o"
  "CMakeFiles/tir_apps.dir/stencil.cpp.o.d"
  "libtir_apps.a"
  "libtir_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
