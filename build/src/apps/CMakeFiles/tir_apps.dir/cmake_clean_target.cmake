file(REMOVE_RECURSE
  "libtir_apps.a"
)
