file(REMOVE_RECURSE
  "CMakeFiles/tir_support.dir/error.cpp.o"
  "CMakeFiles/tir_support.dir/error.cpp.o.d"
  "CMakeFiles/tir_support.dir/log.cpp.o"
  "CMakeFiles/tir_support.dir/log.cpp.o.d"
  "CMakeFiles/tir_support.dir/rng.cpp.o"
  "CMakeFiles/tir_support.dir/rng.cpp.o.d"
  "CMakeFiles/tir_support.dir/stats.cpp.o"
  "CMakeFiles/tir_support.dir/stats.cpp.o.d"
  "CMakeFiles/tir_support.dir/strings.cpp.o"
  "CMakeFiles/tir_support.dir/strings.cpp.o.d"
  "CMakeFiles/tir_support.dir/units.cpp.o"
  "CMakeFiles/tir_support.dir/units.cpp.o.d"
  "libtir_support.a"
  "libtir_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
