
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cluster.cpp" "src/platform/CMakeFiles/tir_platform.dir/cluster.cpp.o" "gcc" "src/platform/CMakeFiles/tir_platform.dir/cluster.cpp.o.d"
  "/root/repo/src/platform/deployment.cpp" "src/platform/CMakeFiles/tir_platform.dir/deployment.cpp.o" "gcc" "src/platform/CMakeFiles/tir_platform.dir/deployment.cpp.o.d"
  "/root/repo/src/platform/netmodel.cpp" "src/platform/CMakeFiles/tir_platform.dir/netmodel.cpp.o" "gcc" "src/platform/CMakeFiles/tir_platform.dir/netmodel.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "src/platform/CMakeFiles/tir_platform.dir/platform.cpp.o" "gcc" "src/platform/CMakeFiles/tir_platform.dir/platform.cpp.o.d"
  "/root/repo/src/platform/platform_file.cpp" "src/platform/CMakeFiles/tir_platform.dir/platform_file.cpp.o" "gcc" "src/platform/CMakeFiles/tir_platform.dir/platform_file.cpp.o.d"
  "/root/repo/src/platform/xml.cpp" "src/platform/CMakeFiles/tir_platform.dir/xml.cpp.o" "gcc" "src/platform/CMakeFiles/tir_platform.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
