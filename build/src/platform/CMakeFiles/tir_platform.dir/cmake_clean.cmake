file(REMOVE_RECURSE
  "CMakeFiles/tir_platform.dir/cluster.cpp.o"
  "CMakeFiles/tir_platform.dir/cluster.cpp.o.d"
  "CMakeFiles/tir_platform.dir/deployment.cpp.o"
  "CMakeFiles/tir_platform.dir/deployment.cpp.o.d"
  "CMakeFiles/tir_platform.dir/netmodel.cpp.o"
  "CMakeFiles/tir_platform.dir/netmodel.cpp.o.d"
  "CMakeFiles/tir_platform.dir/platform.cpp.o"
  "CMakeFiles/tir_platform.dir/platform.cpp.o.d"
  "CMakeFiles/tir_platform.dir/platform_file.cpp.o"
  "CMakeFiles/tir_platform.dir/platform_file.cpp.o.d"
  "CMakeFiles/tir_platform.dir/xml.cpp.o"
  "CMakeFiles/tir_platform.dir/xml.cpp.o.d"
  "libtir_platform.a"
  "libtir_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
