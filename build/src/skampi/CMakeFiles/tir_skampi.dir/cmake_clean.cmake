file(REMOVE_RECURSE
  "CMakeFiles/tir_skampi.dir/pingpong.cpp.o"
  "CMakeFiles/tir_skampi.dir/pingpong.cpp.o.d"
  "CMakeFiles/tir_skampi.dir/pwl_fit.cpp.o"
  "CMakeFiles/tir_skampi.dir/pwl_fit.cpp.o.d"
  "libtir_skampi.a"
  "libtir_skampi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_skampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
