# Empty compiler generated dependencies file for tir_skampi.
# This may be replaced when dependencies are built.
