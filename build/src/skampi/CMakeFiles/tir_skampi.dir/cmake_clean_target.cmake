file(REMOVE_RECURSE
  "libtir_skampi.a"
)
