
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/collectives.cpp" "src/mpisim/CMakeFiles/tir_mpisim.dir/collectives.cpp.o" "gcc" "src/mpisim/CMakeFiles/tir_mpisim.dir/collectives.cpp.o.d"
  "/root/repo/src/mpisim/rank.cpp" "src/mpisim/CMakeFiles/tir_mpisim.dir/rank.cpp.o" "gcc" "src/mpisim/CMakeFiles/tir_mpisim.dir/rank.cpp.o.d"
  "/root/repo/src/mpisim/world.cpp" "src/mpisim/CMakeFiles/tir_mpisim.dir/world.cpp.o" "gcc" "src/mpisim/CMakeFiles/tir_mpisim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkern/CMakeFiles/tir_simkern.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tir_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
