# Empty dependencies file for tir_mpisim.
# This may be replaced when dependencies are built.
