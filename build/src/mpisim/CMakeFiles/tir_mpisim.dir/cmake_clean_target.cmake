file(REMOVE_RECURSE
  "libtir_mpisim.a"
)
