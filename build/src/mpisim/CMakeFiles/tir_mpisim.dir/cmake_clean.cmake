file(REMOVE_RECURSE
  "CMakeFiles/tir_mpisim.dir/collectives.cpp.o"
  "CMakeFiles/tir_mpisim.dir/collectives.cpp.o.d"
  "CMakeFiles/tir_mpisim.dir/rank.cpp.o"
  "CMakeFiles/tir_mpisim.dir/rank.cpp.o.d"
  "CMakeFiles/tir_mpisim.dir/world.cpp.o"
  "CMakeFiles/tir_mpisim.dir/world.cpp.o.d"
  "libtir_mpisim.a"
  "libtir_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
