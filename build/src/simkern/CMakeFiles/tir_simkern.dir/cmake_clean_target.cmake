file(REMOVE_RECURSE
  "libtir_simkern.a"
)
