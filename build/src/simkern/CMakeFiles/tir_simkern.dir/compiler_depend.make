# Empty compiler generated dependencies file for tir_simkern.
# This may be replaced when dependencies are built.
