
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkern/activity.cpp" "src/simkern/CMakeFiles/tir_simkern.dir/activity.cpp.o" "gcc" "src/simkern/CMakeFiles/tir_simkern.dir/activity.cpp.o.d"
  "/root/repo/src/simkern/engine.cpp" "src/simkern/CMakeFiles/tir_simkern.dir/engine.cpp.o" "gcc" "src/simkern/CMakeFiles/tir_simkern.dir/engine.cpp.o.d"
  "/root/repo/src/simkern/maxmin.cpp" "src/simkern/CMakeFiles/tir_simkern.dir/maxmin.cpp.o" "gcc" "src/simkern/CMakeFiles/tir_simkern.dir/maxmin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tir_support.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tir_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
