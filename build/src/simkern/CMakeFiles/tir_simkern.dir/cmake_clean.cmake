file(REMOVE_RECURSE
  "CMakeFiles/tir_simkern.dir/activity.cpp.o"
  "CMakeFiles/tir_simkern.dir/activity.cpp.o.d"
  "CMakeFiles/tir_simkern.dir/engine.cpp.o"
  "CMakeFiles/tir_simkern.dir/engine.cpp.o.d"
  "CMakeFiles/tir_simkern.dir/maxmin.cpp.o"
  "CMakeFiles/tir_simkern.dir/maxmin.cpp.o.d"
  "libtir_simkern.a"
  "libtir_simkern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_simkern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
