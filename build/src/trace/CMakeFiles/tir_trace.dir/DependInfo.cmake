
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/action.cpp" "src/trace/CMakeFiles/tir_trace.dir/action.cpp.o" "gcc" "src/trace/CMakeFiles/tir_trace.dir/action.cpp.o.d"
  "/root/repo/src/trace/binary_format.cpp" "src/trace/CMakeFiles/tir_trace.dir/binary_format.cpp.o" "gcc" "src/trace/CMakeFiles/tir_trace.dir/binary_format.cpp.o.d"
  "/root/repo/src/trace/compact.cpp" "src/trace/CMakeFiles/tir_trace.dir/compact.cpp.o" "gcc" "src/trace/CMakeFiles/tir_trace.dir/compact.cpp.o.d"
  "/root/repo/src/trace/text_format.cpp" "src/trace/CMakeFiles/tir_trace.dir/text_format.cpp.o" "gcc" "src/trace/CMakeFiles/tir_trace.dir/text_format.cpp.o.d"
  "/root/repo/src/trace/trace_set.cpp" "src/trace/CMakeFiles/tir_trace.dir/trace_set.cpp.o" "gcc" "src/trace/CMakeFiles/tir_trace.dir/trace_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
