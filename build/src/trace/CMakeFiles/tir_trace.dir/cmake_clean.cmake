file(REMOVE_RECURSE
  "CMakeFiles/tir_trace.dir/action.cpp.o"
  "CMakeFiles/tir_trace.dir/action.cpp.o.d"
  "CMakeFiles/tir_trace.dir/binary_format.cpp.o"
  "CMakeFiles/tir_trace.dir/binary_format.cpp.o.d"
  "CMakeFiles/tir_trace.dir/compact.cpp.o"
  "CMakeFiles/tir_trace.dir/compact.cpp.o.d"
  "CMakeFiles/tir_trace.dir/text_format.cpp.o"
  "CMakeFiles/tir_trace.dir/text_format.cpp.o.d"
  "CMakeFiles/tir_trace.dir/trace_set.cpp.o"
  "CMakeFiles/tir_trace.dir/trace_set.cpp.o.d"
  "libtir_trace.a"
  "libtir_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
