# Empty dependencies file for tir_trace.
# This may be replaced when dependencies are built.
