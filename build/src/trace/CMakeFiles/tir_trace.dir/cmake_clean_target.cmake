file(REMOVE_RECURSE
  "libtir_trace.a"
)
