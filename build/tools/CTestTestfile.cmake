# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_replay_smoke "/root/repo/build/tools/tir-replay" "--platform" "/root/repo/build/examples/quickstart_work/platform.xml" "--deployment" "/root/repo/build/examples/quickstart_work/deployment.xml" "/root/repo/build/examples/quickstart_work/SG_process0.trace" "/root/repo/build/examples/quickstart_work/SG_process1.trace" "/root/repo/build/examples/quickstart_work/SG_process2.trace" "/root/repo/build/examples/quickstart_work/SG_process3.trace" "--profile")
set_tests_properties(tool_replay_smoke PROPERTIES  FIXTURES_REQUIRED "quickstart_output" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_traceinfo_smoke "/root/repo/build/tools/tir-traceinfo" "/root/repo/build/examples/quickstart_work/SG_process0.trace")
set_tests_properties(tool_traceinfo_smoke PROPERTIES  FIXTURES_REQUIRED "quickstart_output" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
