# Empty compiler generated dependencies file for tir-tau2ti.
# This may be replaced when dependencies are built.
