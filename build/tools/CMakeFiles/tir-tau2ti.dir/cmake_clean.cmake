file(REMOVE_RECURSE
  "CMakeFiles/tir-tau2ti.dir/tir-tau2ti.cpp.o"
  "CMakeFiles/tir-tau2ti.dir/tir-tau2ti.cpp.o.d"
  "tir-tau2ti"
  "tir-tau2ti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir-tau2ti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
