file(REMOVE_RECURSE
  "CMakeFiles/tir-traceinfo.dir/tir-traceinfo.cpp.o"
  "CMakeFiles/tir-traceinfo.dir/tir-traceinfo.cpp.o.d"
  "tir-traceinfo"
  "tir-traceinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir-traceinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
