# Empty compiler generated dependencies file for tir-traceinfo.
# This may be replaced when dependencies are built.
