# Empty dependencies file for tir-replay.
# This may be replaced when dependencies are built.
