file(REMOVE_RECURSE
  "CMakeFiles/tir-replay.dir/tir-replay.cpp.o"
  "CMakeFiles/tir-replay.dir/tir-replay.cpp.o.d"
  "tir-replay"
  "tir-replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tir-replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
