#!/usr/bin/env bash
# Perf-trajectory harness: records the kernel microbenchmarks (JSON) and
# the Figure 9 replay-time bench into bench/results/, the repo's running
# record of simulation-kernel performance. Compare a fresh BENCH_kernel.json
# against the committed one (or a *.pre-*.json baseline) before landing a
# kernel change.
#
# Usage:
#   bench/run_bench.sh [build-dir]       # default: build
#
# Environment:
#   MIN_TIME   google-benchmark min time per bench, seconds (default 0.2)
#   TIR_SCALE  Figure 9 iteration fraction (default 0.05)
#   OUT        output directory (default bench/results)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT="${OUT:-bench/results}"
MIN_TIME="${MIN_TIME:-0.2}"
mkdir -p "$OUT"

if [[ ! -x "$BUILD/bench/bench_micro_kernel" ]]; then
  echo "error: $BUILD/bench/bench_micro_kernel not built" \
       "(cmake --build $BUILD -j)" >&2
  exit 2
fi

echo "== kernel microbenchmarks -> $OUT/BENCH_kernel.json"
"$BUILD/bench/bench_micro_kernel" \
  --benchmark_format=json \
  --benchmark_out="$OUT/BENCH_kernel.json" \
  --benchmark_min_time="$MIN_TIME"

echo "== Figure 9 replay time -> $OUT/BENCH_fig9.txt"
TIR_SCALE="${TIR_SCALE:-0.05}" "$BUILD/bench/bench_fig9_replaytime" \
  | tee "$OUT/BENCH_fig9.txt"

# Parallel-engine counterpart: sequential vs fast-path vs fast-path+shards
# over the same LU class-B replays; the bench exits nonzero if any engine's
# simulated time diverges bitwise. TIR_FIG9_PROCS=8,64,256,... extends the
# rank counts (acquisition dominates past 64 — see EXPERIMENTS.md).
echo "== Figure 9 parallel engines -> $OUT/BENCH_fig9_parallel.txt"
TIR_SCALE="${TIR_SCALE:-0.05}" "$BUILD/bench/bench_fig9_parallel" \
  | tee "$OUT/BENCH_fig9_parallel.txt"

# Replay-as-a-service soak: warm memo hits vs cold replays (>= 10x), RSS
# bounded, responses bit-identical. Also recordable standalone via the
# bench-serve-record cmake target.
echo "== replay-as-a-service soak -> $OUT/BENCH_serve.txt"
TIR_SCALE="${TIR_SCALE:-0.05}" "$BUILD/bench/bench_serve" \
  | tee "$OUT/BENCH_serve.txt"

echo "== recorded: $OUT/BENCH_kernel.json $OUT/BENCH_fig9.txt" \
     "$OUT/BENCH_fig9_parallel.txt $OUT/BENCH_serve.txt"
