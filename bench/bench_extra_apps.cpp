// Beyond the paper: replay accuracy across application profiles.
//
// The paper evaluates LU only; this bench acquires and replays four NPB
// kernels plus the 2-D stencil, comparing the replayed prediction against
// the direct (on-line) simulation — the comparison the paper lists as
// future work. Expected shape: EP (pure compute, constant rate) replays
// almost exactly; FT (all-to-all) and CG (latency-bound) stay close
// because communication is modeled, not calibrated; LU's error comes from
// its phase-dependent flop rate (Fig 8's story).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "apps/npb_extra.hpp"
#include "apps/stencil.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/calibration.hpp"
#include "replay/replayer.hpp"
#include "support/stats.hpp"

using namespace tir;

namespace {

double direct_run(const apps::AppDesc& app) {
  const auto ap =
      acq::build_acquisition_platform(acq::Mode::regular, app.nprocs, 1);
  sim::Engine engine(ap.platform);
  mpi::World world(engine, ap.rank_hosts);
  world.launch(
      [&app](mpi::Rank& r) -> sim::Co<void> { co_await app.body(r); });
  engine.run();
  return engine.now();
}

}  // namespace

int main() {
  const double scale = bench::scale();
  bench::banner("Beyond the paper — replay accuracy across applications",
                "direct (on-line) simulation vs time-independent replay; "
                "iteration fraction " + std::to_string(scale));

  // One shared calibration, as a user would do it (§5).
  const auto cal_dir = bench::fresh_workdir("extra_cal");
  bench::WorkdirGuard cal_guard(cal_dir);
  apps::LuConfig small;
  small.cls = apps::NpbClass::W;
  small.nprocs = 4;
  small.iteration_scale = 0.02;
  replay::CalibrationSpec cal;
  cal.small_instance = apps::make_lu_app(small);
  cal.workdir = cal_dir;
  const auto calibration = replay::calibrate_flop_rate(cal);

  struct Entry {
    std::string name;
    apps::AppDesc app;
    double app_rate;  ///< the app's true achieved fraction of peak
  };
  std::vector<Entry> entries;

  apps::EpConfig ep;
  ep.cls = apps::NpbClass::A;
  ep.nprocs = 8;
  entries.push_back({"EP.A/8 (compute only)", apps::make_ep_app(ep),
                     ep.efficiency});
  apps::FtConfig ft;
  ft.cls = apps::NpbClass::A;
  ft.nprocs = 8;
  ft.iteration_scale = scale;
  entries.push_back({"FT.A/8 (all-to-all)", apps::make_ft_app(ft),
                     ft.efficiency});
  apps::CgConfig cg;
  cg.cls = apps::NpbClass::B;
  cg.nprocs = 8;
  cg.iteration_scale = scale;
  entries.push_back({"CG.B/8 (latency bound)", apps::make_cg_app(cg),
                     cg.efficiency});
  apps::MgConfig mg;
  mg.cls = apps::NpbClass::W;
  mg.nprocs = 8;
  entries.push_back({"MG.W/8 (V-cycle halos)", apps::make_mg_app(mg),
                     mg.efficiency});
  apps::LuConfig lu;
  lu.cls = apps::NpbClass::A;
  lu.nprocs = 8;
  lu.iteration_scale = scale;
  entries.push_back({"LU.A/8 (variable rate)", apps::make_lu_app(lu), 0.0});
  apps::StencilConfig st;
  st.nprocs = 8;
  st.grid = 2048;
  st.iterations = 100;
  entries.push_back({"stencil/8 (halo)", apps::make_stencil_app(st),
                     st.efficiency});

  std::printf("%-24s | %12s %12s | %8s\n", "application", "direct (s)",
              "replayed (s)", "error %");
  for (const auto& entry : entries) {
    const double direct = direct_run(entry.app);

    const auto workdir = bench::fresh_workdir("extra_" + entry.app.name);
    bench::WorkdirGuard guard(workdir);
    acq::AcquisitionSpec spec;
    spec.app = entry.app;
    spec.workdir = workdir;
    spec.run_uninstrumented_baseline = false;
    const auto report = acq::run_acquisition(spec);

    // Replay with the §5 calibration: hosts clocked at the calibrated LU
    // rate. Apps whose true rate differs pay the corresponding error —
    // exactly the paper's observation generalised.
    plat::Platform target;
    auto target_spec = plat::bordereau_spec(entry.app.nprocs);
    target_spec.power = calibration.flop_rate;
    const auto hosts = plat::build_cluster(target, target_spec);
    const auto traces = trace::TraceSet::per_process_files(report.ti_files);
    replay::Replayer replayer(target, hosts, traces);
    const double replayed = replayer.run().simulated_time;

    std::printf("%-24s | %12.3f %12.3f | %7.1f%%\n", entry.name.c_str(),
                direct, replayed,
                100.0 * tir::relative_error(replayed, direct));
    std::fflush(stdout);
  }
  std::printf("\nThe error tracks how far each application's achieved flop "
              "rate sits from the\nLU-calibrated platform rate — the same "
              "root cause as Figure 8.\n");
  return 0;
}
