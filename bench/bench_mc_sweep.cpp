// Monte-Carlo sweep throughput: a 1000-replica perturbed LU replay through
// the MC driver, with the determinism and sensitivity acceptance checks.
//
// The paper's replay emits one deterministic makespan per calibration; the
// perturbation engine turns that point into a distribution (mean / stddev /
// 95% CI) plus a per-resource sensitivity ranking. This bench records how
// fast the replica fan-out runs at scale and enforces the acceptance bars:
//   * the summary is bit-identical across seeds-equal runs regardless of
//     worker count, and
//   * the top sensitivity target is the host the obs critical path blames
//     (here rigged: one host carries two LU ranks, everyone else one).
// Replica count scales with TIR_SCALE (1000 at the default 0.1).
#include <chrono>
#include <cstdio>
#include <cstring>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "obs/report.hpp"
#include "platform/cluster.hpp"
#include "replay/montecarlo.hpp"

using namespace tir;
using namespace tir::replay;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const double scale = bench::scale();
  const int nprocs = 8;
  const int replicas =
      std::max(8, static_cast<int>(1000.0 * std::min(1.0, scale * 10.0)));

  bench::banner("Monte-Carlo sweep — perturbed LU replicas through tir-mc's "
                "driver",
                std::to_string(replicas) + " replicas, LU class S on " +
                    std::to_string(nprocs) + " ranks, iteration fraction " +
                    std::to_string(scale));

  // Acquire an LU class-S time-independent trace once.
  const auto workdir = bench::fresh_workdir("mc_sweep");
  bench::WorkdirGuard guard(workdir);
  apps::LuConfig lu;
  lu.cls = apps::NpbClass::S;
  lu.nprocs = nprocs;
  lu.iteration_scale = scale;
  acq::AcquisitionSpec acq_spec;
  acq_spec.app = apps::make_lu_app(lu);
  acq_spec.mode = acq::Mode::regular;
  acq_spec.workdir = workdir;
  acq_spec.run_uninstrumented_baseline = false;
  const auto acquired = acq::run_acquisition(acq_spec);

  // Deploy 8 ranks onto 7 hosts: the last host carries ranks 6 and 7, so
  // its timesharing stretches the tail of the wavefront — the critical
  // path and the top sensitivity target must both land on it.
  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts =
      plat::build_cluster(*platform, plat::bordereau_spec(nprocs - 1));
  std::vector<int> process_hosts;
  for (int rank = 0; rank < nprocs; ++rank)
    process_hosts.push_back(
        hosts[static_cast<std::size_t>(std::min(rank, nprocs - 2))]);

  ScenarioSpec spec;
  spec.name = "lu-S-mc";
  spec.platform = platform;
  spec.process_hosts = process_hosts;
  spec.traces = trace::TraceSet::per_process_files(acquired.ti_files);

  // Where does the deterministic critical path run? Aggregate the per-rank
  // path attribution onto hosts — the hot *resource* is what the MC
  // sensitivity ranking must reproduce.
  auto observed = spec;
  observed.config.record_spans = true;
  const auto baseline_run = run_scenario(observed);
  const obs::TimelineReport report = obs::analyze(*baseline_run.spans);
  std::vector<double> host_path_seconds(platform->host_count(), 0.0);
  for (std::size_t r = 0; r < report.path_rank_seconds.size(); ++r)
    host_path_seconds[static_cast<std::size_t>(process_hosts[r])] +=
        report.path_rank_seconds[r];
  int hot_host = 0;
  for (std::size_t h = 1; h < host_path_seconds.size(); ++h)
    if (host_path_seconds[h] > host_path_seconds[static_cast<std::size_t>(
            hot_host)])
      hot_host = static_cast<int>(h);
  std::printf("critical path: hot rank %d, hot host id %d (%.4g of %.4g s "
              "path time)\n",
              report.hot_rank(), hot_host,
              host_path_seconds[static_cast<std::size_t>(hot_host)],
              baseline_run.simulated_time);

  PerturbSpec perturb;
  perturb.host_noise = 0.08;
  perturb.link_bw_noise = 0.03;

  McOptions opts;
  opts.replicas = replicas;
  opts.seed = 42;

  const auto t0 = std::chrono::steady_clock::now();
  const McSummary summary = run_monte_carlo(spec, perturb, opts);
  const double elapsed = seconds_since(t0);

  McOptions serial = opts;
  serial.workers = 1;
  const McSummary check = run_monte_carlo(spec, perturb, serial);

  std::printf("\n%s\n", summary.render(5).c_str());
  std::printf("%-28s %10.3f s\n", "wall-clock:", elapsed);
  std::printf("%-28s %10.1f replicas/s\n", "throughput:",
              elapsed > 0 ? replicas / elapsed : 0.0);

  const bool deterministic =
      std::memcmp(&summary.mean, &check.mean, sizeof summary.mean) == 0 &&
      std::memcmp(&summary.stddev, &check.stddev, sizeof summary.stddev) == 0;
  std::printf("%-28s %10s\n", "deterministic given seed:",
              deterministic ? "yes" : "NO");
  if (!deterministic) return 1;
  if (summary.failures > 0) {
    std::printf("FAIL: %d replica(s) failed\n", summary.failures);
    return 1;
  }
  if (summary.sensitivity.empty()) {
    std::printf("FAIL: empty sensitivity ranking\n");
    return 1;
  }
  const SensitivityEntry& top = summary.sensitivity.front();
  std::printf("%-28s %10s (impact %.3g s)\n", "top sensitivity:",
              top.name.c_str(), top.impact);
  if (top.kind != FaultSpec::Kind::host || top.id != hot_host) {
    std::printf("FAIL: top sensitivity %s id %d, critical path blames host "
                "id %d\n",
                top.kind == FaultSpec::Kind::host ? "host" : "link", top.id,
                hot_host);
    return 1;
  }
  std::printf("\nOK\n");
  return 0;
}
