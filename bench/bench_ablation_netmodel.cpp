// Ablation: the 3-segment piece-wise linear MPI model (paper §5) against a
// single affine model. Two views:
//   1. Pingpong fidelity: fit both models against measurements generated
//      under the PWL ground truth; the affine fit mispredicts small and
//      mid-size messages.
//   2. End-to-end impact: replay the same LU trace under both network
//      models and report the predicted-time difference.
#include <cstdio>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "skampi/pingpong.hpp"
#include "skampi/pwl_fit.hpp"
#include "support/stats.hpp"

using namespace tir;

int main() {
  bench::banner("Ablation — piece-wise linear vs affine network model", "");

  // --- 1. pingpong fit quality -------------------------------------------
  plat::Platform truth_platform;
  plat::ClusterSpec spec = plat::bordereau_spec(2);
  const auto hosts = plat::build_cluster(truth_platform, spec);
  // Ground truth: the default PWL cluster model.
  truth_platform.set_net_model(plat::PiecewiseNetModel::default_cluster_model());
  const auto points = skampi::run_pingpong(truth_platform, hosts[0], hosts[1],
                                           skampi::default_sizes(),
                                           /*eager=*/1ull << 40);
  const double nominal_lat = 3 * spec.latency;
  const auto pwl =
      skampi::fit_piecewise_model(points, nominal_lat, spec.bandwidth, 1024,
                                  64 * 1024);
  // Affine: force a single segment over the whole range.
  const auto affine = skampi::fit_piecewise_model(
      points, nominal_lat, spec.bandwidth, 1, 1);
  std::printf("pingpong best-fit SSE:  pwl %.3e   affine %.3e  (lower is "
              "better)\n", pwl.sse, affine.sse);
  std::printf("pwl model: %s\n", pwl.model.describe().c_str());

  // --- 2. end-to-end replay impact ----------------------------------------
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::A;
  cfg.nprocs = 16;
  cfg.iteration_scale = bench::scale();
  const auto workdir = bench::fresh_workdir("abl_netmodel");
  bench::WorkdirGuard guard(workdir);
  acq::AcquisitionSpec acq_spec;
  acq_spec.app = apps::make_lu_app(cfg);
  acq_spec.workdir = workdir;
  acq_spec.run_uninstrumented_baseline = false;
  const auto r = acq::run_acquisition(acq_spec);
  const auto traces = trace::TraceSet::per_process_files(r.ti_files);

  const auto replay_with = [&](plat::PiecewiseNetModel model) {
    plat::Platform target;
    const auto target_hosts =
        plat::build_cluster(target, plat::bordereau_spec(16));
    target.set_net_model(model);
    replay::Replayer replayer(target, target_hosts, traces);
    return replayer.run().simulated_time;
  };
  const double t_pwl =
      replay_with(plat::PiecewiseNetModel::default_cluster_model());
  const double t_affine = replay_with(plat::PiecewiseNetModel::affine_model());
  std::printf("\nLU A/16 replay:  pwl model %.3f s   affine model %.3f s   "
              "difference %.1f%%\n", t_pwl, t_affine,
              100.0 * tir::relative_error(t_affine, t_pwl));
  std::printf("\nThe affine model misses the eager-protocol bandwidth "
              "penalty and the rendezvous\nlatency, which the PWL "
              "calibration recovers (paper §5).\n");
  return 0;
}
