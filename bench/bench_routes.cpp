// bench_routes — topology-builder and route-computation microbenchmarks.
//
// For every registry topology: wall time to build the platform (graph
// construction + BFS next-hop tables) and route() throughput over
// host pairs, with the mean route length as a sanity column. Guards the
// tentpole's costs: platform build is per-sweep-scenario, route() is on
// the engine's cache-miss path.
//
// Run directly for the table, or `cmake --build build --target
// bench-routes-record` to append the results under bench/results/.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "platform/platform.hpp"
#include "platform/topology.hpp"

using namespace tir;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void bench_one(const std::string& spec) {
  const auto t_build = Clock::now();
  const plat::Platform platform = plat::make_platform(spec);
  const double build_ms = ms_since(t_build);

  const int n = static_cast<int>(platform.host_count());
  // All pairs up to ~1e5 routes per repetition; larger platforms sample a
  // deterministic stride so every benchmark stays O(100ms).
  const int stride = n * n > 100'000 ? n * n / 100'000 + 1 : 1;
  std::size_t routes = 0;
  std::size_t links = 0;
  const auto t_routes = Clock::now();
  double route_ms = 0.0;
  do {
    for (long long pair = 0; pair < static_cast<long long>(n) * n;
         pair += stride) {
      const int src = static_cast<int>(pair / n);
      const int dst = static_cast<int>(pair % n);
      links += platform.route(src, dst).links.size();
      ++routes;
    }
    route_ms = ms_since(t_routes);
  } while (route_ms < 50.0);

  std::printf("%-44s %6d %10.2f %12.0f %8.2f\n", spec.c_str(), n, build_ms,
              static_cast<double>(routes) / (route_ms / 1e3),
              static_cast<double>(links) / static_cast<double>(routes));
}

}  // namespace

int main() {
  bench::banner("bench_routes: topology build time and route throughput",
                "build_ms = make_platform(spec); routes/s = Platform::route() "
                "over host pairs\n(cold cache: the engine memoises per-pair "
                "routes on top of this)");
  std::printf("%-44s %6s %10s %12s %8s\n", "spec", "hosts", "build_ms",
              "routes/s", "links");
  for (const char* spec : {
           "cluster:hosts=256",
           "bordereau:nodes=93",
           "gdx:nodes=186",
           "dragonfly:groups=9,routers=4,hosts=2",
           "dragonfly:groups=9,routers=4,hosts=2,routing=valiant",
           "dragonfly:groups=17,routers=8,hosts=4,globals=2",
           "fattree:k=8",
           "fattree:k=8,routing=shortest",
           "torus:dims=8x8x4",
           "torus:dims=8x8x4,routing=shortest",
       })
    bench_one(spec);
  return 0;
}
