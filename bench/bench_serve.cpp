// Replay-as-a-service soak: cold vs warm throughput, bounded memory, and
// bit-identical memoisation under a mixed request stream.
//
// The serving thesis: the sweep/Monte-Carlo workload asks the same handful
// of questions thousands of times, so a persistent daemon with a
// content-addressed trace cache and a result memo should answer repeats at
// memory speed. This bench drives the in-process ReplayService (the same
// object tir-serve wraps) through three phases:
//
//   1. cold  — N distinct scenarios (efficiency ladder + fault rows), every
//              one a memo miss that actually replays;
//   2. warm  — K requests cycling over those same scenarios, every one a
//              memo hit answered without simulation;
//   3. churn — trace-directory rotation under a deliberately tiny cache
//              byte budget, proving eviction keeps residency bounded.
//
// Acceptance (exit 1 on violation):
//   - warm throughput >= 10x cold throughput;
//   - every warm response bit-identical (memcmp on the sim_time double) to
//     its cold counterpart;
//   - RSS growth across the warm soak < 64 MiB (the memo and caches are
//     bounded; a leak per request would show at 10^4..10^5 requests);
//   - churn phase keeps resident_bytes <= the configured budget.
//
// TIR_SCALE scales the warm request count (default 0.1 -> 10^4 requests;
// TIR_FULL=1 -> 10^5). The CI smoke runs TIR_SCALE=0.01 (10^3).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/service.hpp"
#include "trace/codec.hpp"
#include "trace/text_format.hpp"

using namespace tir;

namespace {

std::vector<std::vector<trace::Action>> ring_actions(int nprocs, int rounds) {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < rounds; ++r) {
    for (int p = 0; p < nprocs; ++p) {
      auto& mine = per[static_cast<std::size_t>(p)];
      const int left = (p + nprocs - 1) % nprocs;
      const int right = (p + 1) % nprocs;
      mine.push_back({p, ActionType::irecv, left, 0, 0, 0});
      mine.push_back({p, ActionType::isend, right, 32 * 1024, 0, 0});
      mine.push_back({p, ActionType::compute, -1, 2e6, 0, 0});
      mine.push_back({p, ActionType::wait, -1, 0, 0, 0});
      mine.push_back({p, ActionType::wait, -1, 0, 0, 0});
    }
  }
  return per;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Resident set size from /proc/self/status, in bytes; 0 when unavailable
/// (non-Linux), which disables the RSS assertion.
std::uint64_t rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) != 0) continue;
    std::uint64_t kb = 0;
    std::sscanf(line.c_str(), "VmRSS: %llu",
                reinterpret_cast<unsigned long long*>(&kb));
    return kb * 1024;
  }
  return 0;
}

struct Outcome {
  double sim_time = 0.0;
  bool memo_hit = false;
  serve::Response::Status status = serve::Response::Status::failed;
};

/// Submits every request, drains, returns per-request outcomes in order.
std::vector<Outcome> drive(serve::ReplayService& service,
                           const std::vector<serve::Request>& requests) {
  std::vector<Outcome> outcomes(requests.size());
  std::mutex mu;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    serve::Request request = requests[i];
    const bool accepted =
        service.submit(std::move(request), [&outcomes, &mu, i](
                                               serve::Response response) {
          std::lock_guard<std::mutex> lock(mu);
          outcomes[i] = {response.sim_time, response.memo_hit,
                         response.status};
        });
    if (!accepted) {
      std::fprintf(stderr, "unexpected shed at request %zu\n", i);
      std::exit(1);
    }
  }
  service.drain();
  return outcomes;
}

}  // namespace

int main() {
  const double scale = bench::scale();
  const int kDistinct = 32;
  const std::size_t kWarm = std::max<std::size_t>(
      1000, static_cast<std::size_t>(100000 * scale));

  const auto dir = bench::fresh_workdir("serve");
  const bench::WorkdirGuard guard(dir);
  trace::write_split_traces(dir / "ti", ring_actions(8, 96));

  bench::banner("Replay-as-a-service soak (bench_serve)",
                "cold misses vs memoised repeats over " +
                    std::to_string(kDistinct) + " scenarios, " +
                    std::to_string(kWarm) + " warm requests");

  serve::ServiceOptions options;
  options.base_dir = dir.string();
  options.queue_limit = kWarm + kDistinct + 16;  // soak measures caches,
  options.max_batch = 256;                       // not admission control
  serve::ReplayService service(options);

  // Mixed distinct scenarios: an efficiency ladder, every fourth row with a
  // fault timeline, every eighth a perturbation replica.
  std::vector<serve::Request> distinct(kDistinct);
  for (int i = 0; i < kDistinct; ++i) {
    serve::Request& request = distinct[static_cast<std::size_t>(i)];
    request.id = "cold-" + std::to_string(i);
    request.params = {{"platform", "cluster:hosts=8"},
                      {"traces", "ti"},
                      {"deployment", "block"},
                      {"efficiency", std::to_string(0.5 + 0.01 * i)}};
    if (i % 4 == 1)
      request.params["fault"] = "host:node-1:0.5@0.001";
    if (i % 8 == 2) {
      request.params["perturb"] = "hostnoise:0.05";
      request.params["replica"] = std::to_string(i % 3);
    }
  }

  const auto t_cold = std::chrono::steady_clock::now();
  const auto cold = drive(service, distinct);
  const double cold_seconds = seconds_since(t_cold);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    if (cold[i].status != serve::Response::Status::ok) {
      std::fprintf(stderr, "cold request %zu not ok\n", i);
      return 1;
    }
    if (cold[i].memo_hit) {
      std::fprintf(stderr, "cold request %zu unexpectedly memo-hit\n", i);
      return 1;
    }
  }

  // Warm soak: cycle the same scenarios; every request must memo-hit and
  // reproduce the cold double bit for bit.
  std::vector<serve::Request> warm_requests(kWarm);
  for (std::size_t i = 0; i < kWarm; ++i) {
    warm_requests[i] = distinct[i % static_cast<std::size_t>(kDistinct)];
    warm_requests[i].id = "warm-" + std::to_string(i);
  }
  const std::uint64_t rss_before = rss_bytes();
  const auto t_warm = std::chrono::steady_clock::now();
  const auto warm = drive(service, warm_requests);
  const double warm_seconds = seconds_since(t_warm);
  const std::uint64_t rss_after = rss_bytes();

  std::size_t mismatches = 0, misses = 0;
  for (std::size_t i = 0; i < warm.size(); ++i) {
    const double expect =
        cold[i % static_cast<std::size_t>(kDistinct)].sim_time;
    if (std::memcmp(&warm[i].sim_time, &expect, sizeof expect) != 0)
      ++mismatches;
    if (!warm[i].memo_hit) ++misses;
  }

  const double cold_rps = static_cast<double>(kDistinct) / cold_seconds;
  const double warm_rps = static_cast<double>(kWarm) / warm_seconds;
  const double speedup = warm_rps / cold_rps;
  const double rss_growth_mib =
      rss_after >= rss_before
          ? static_cast<double>(rss_after - rss_before) / (1024.0 * 1024.0)
          : 0.0;

  std::printf("\n%-28s %12s %12s %10s\n", "phase", "requests", "seconds",
              "req/s");
  std::printf("%-28s %12d %12.4f %10.0f\n", "cold (replayed)", kDistinct,
              cold_seconds, cold_rps);
  std::printf("%-28s %12zu %12.4f %10.0f\n", "warm (memoised)", kWarm,
              warm_seconds, warm_rps);
  std::printf("\nwarm/cold speedup: %.1fx   warm misses: %zu   "
              "bit mismatches: %zu\n", speedup, misses, mismatches);
  std::printf("rss before/after warm soak: %.1f / %.1f MiB (growth %.1f)\n",
              static_cast<double>(rss_before) / (1024.0 * 1024.0),
              static_cast<double>(rss_after) / (1024.0 * 1024.0),
              rss_growth_mib);

  const auto stats = service.stats();
  std::printf("service: received=%llu replays=%llu memo_hits=%llu "
              "batch_dedups=%llu trace_decodes=%llu trace_hits=%llu\n",
              static_cast<unsigned long long>(stats.received),
              static_cast<unsigned long long>(stats.replays),
              static_cast<unsigned long long>(stats.memo_hits),
              static_cast<unsigned long long>(stats.batch_dedups),
              static_cast<unsigned long long>(stats.trace_cache.misses),
              static_cast<unsigned long long>(stats.trace_cache.hits));
  std::printf("latency: queue %s\n         solve %s\n",
              stats.queue_wait.summary().c_str(),
              stats.solve.summary().c_str());

  // Sweep decode-reuse (the tir-sweep satellite): three spellings of one
  // trace directory used to decode three times keyed by raw spec string;
  // canonical path keys collapse them to one decode.
  {
    serve::TraceCache cache;
    serve::InputResolver resolver(dir, cache);
    resolver.traces("ti", false);
    resolver.traces("./ti", false);
    resolver.traces((dir / "ti").string(), false);
    const auto cstats = cache.stats();
    std::printf("\nsweep decode reuse: 3 spellings of one directory -> "
                "%llu decode(s), %llu hit(s) "
                "(before canonical keys: 3 decodes)\n",
                static_cast<unsigned long long>(cstats.misses),
                static_cast<unsigned long long>(cstats.hits));
    if (cstats.misses != 1) {
      std::fprintf(stderr, "FAIL: expected one decode across spellings\n");
      return 1;
    }
  }

  // Churn phase: rotate differently-shaped traces through a tiny budget;
  // eviction must keep residency bounded the whole way.
  {
    const auto probe = trace::TraceSet::in_memory(ring_actions(8, 48));
    serve::TraceCacheOptions copts;
    copts.byte_budget = 3 * trace::decoded_bytes(probe) / 2;
    serve::TraceCache cache(copts);
    std::uint64_t max_resident = 0;
    const int kChurn = 24;
    for (int i = 0; i < kChurn; ++i) {
      cache.get("churn-" + std::to_string(i % 8), [&] {
        auto program = ring_actions(8, 48);
        program[0][0].volume += i % 8;  // 8 distinct contents
        return trace::TraceSet::in_memory(program);
      });
      max_resident = std::max(max_resident, cache.stats().resident_bytes);
    }
    const auto cstats = cache.stats();
    std::printf("trace churn: budget=%llu max_resident=%llu evictions=%llu\n",
                static_cast<unsigned long long>(copts.byte_budget),
                static_cast<unsigned long long>(max_resident),
                static_cast<unsigned long long>(cstats.evictions));
    if (max_resident > copts.byte_budget) {
      std::fprintf(stderr, "FAIL: residency exceeded the byte budget\n");
      return 1;
    }
    if (cstats.evictions == 0) {
      std::fprintf(stderr, "FAIL: churn produced no evictions\n");
      return 1;
    }
  }

  bool failed = false;
  if (speedup < 10.0) {
    std::fprintf(stderr, "FAIL: warm/cold speedup %.1fx < 10x\n", speedup);
    failed = true;
  }
  if (misses != 0 || mismatches != 0) {
    std::fprintf(stderr, "FAIL: %zu warm misses, %zu bit mismatches\n",
                 misses, mismatches);
    failed = true;
  }
  if (rss_before != 0 && rss_growth_mib > 64.0) {
    std::fprintf(stderr, "FAIL: RSS grew %.1f MiB over the warm soak\n",
                 rss_growth_mib);
    failed = true;
  }
  std::printf("\n%s\n", failed ? "FAILED" : "OK: warm path >= 10x cold, "
              "bit-identical, memory bounded");
  return failed ? 1 : 0;
}
