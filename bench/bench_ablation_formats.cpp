// Ablation: text vs binary time-independent trace format (the paper's
// "future work" §7: "reduce the size of the traces, e.g., using a binary
// format"). Reports on-disk size and end-to-end parse speed.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "trace/binary_format.hpp"
#include "trace/text_format.hpp"
#include "trace/trace_set.hpp"

using namespace tir::trace;
namespace fs = std::filesystem;

namespace {

// A realistic LU-like action mix.
std::vector<Action> sample_actions(int n) {
  std::vector<Action> actions;
  actions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0:
        actions.push_back({7, ActionType::compute, -1, 81920.0 + i % 97, 0, 0});
        break;
      case 1:
        actions.push_back({7, ActionType::recv, 3, 0, 0, 0});
        break;
      case 2:
        actions.push_back({7, ActionType::send, 11, 520, 0, 0});
        break;
      case 3:
        actions.push_back({7, ActionType::irecv, 15, 106080, 0, 0});
        break;
      default:
        actions.push_back({7, ActionType::wait, -1, 0, 0, 0});
        break;
    }
  }
  return actions;
}

struct Files {
  fs::path text;
  fs::path binary;
  Files() {
    const auto dir = fs::temp_directory_path() / "tir_bench_formats";
    fs::create_directories(dir);
    text = dir / "sample.trace";
    binary = dir / "sample.btrace";
    const auto actions = sample_actions(200000);
    {
      TextTraceWriter w(text);
      for (const auto& a : actions) w.write(a);
    }
    {
      BinaryTraceWriter w(binary, 7);
      for (const auto& a : actions) w.write(a);
    }
  }
};

const Files& files() {
  static Files f;
  return f;
}

void BM_ParseText(benchmark::State& state) {
  for (auto _ : state) {
    TextTraceReader reader(files().text);
    std::uint64_t n = 0;
    while (auto a = reader.next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["bytes"] =
      static_cast<double>(fs::file_size(files().text));
}
BENCHMARK(BM_ParseText)->Unit(benchmark::kMillisecond);

void BM_ParseBinary(benchmark::State& state) {
  for (auto _ : state) {
    BinaryTraceReader reader(files().binary);
    std::uint64_t n = 0;
    while (auto a = reader.next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["bytes"] =
      static_cast<double>(fs::file_size(files().binary));
}
BENCHMARK(BM_ParseBinary)->Unit(benchmark::kMillisecond);

void BM_WriteText(benchmark::State& state) {
  const auto actions = sample_actions(50000);
  const auto out = fs::temp_directory_path() / "tir_bench_formats_w.trace";
  for (auto _ : state) {
    TextTraceWriter w(out);
    for (const auto& a : actions) w.write(a);
    benchmark::DoNotOptimize(w.close());
  }
}
BENCHMARK(BM_WriteText)->Unit(benchmark::kMillisecond);

void BM_WriteBinary(benchmark::State& state) {
  const auto actions = sample_actions(50000);
  const auto out = fs::temp_directory_path() / "tir_bench_formats_w.btrace";
  for (auto _ : state) {
    BinaryTraceWriter w(out, 7);
    for (const auto& a : actions) w.write(a);
    benchmark::DoNotOptimize(w.close());
  }
}
BENCHMARK(BM_WriteBinary)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
