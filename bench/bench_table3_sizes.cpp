// Table 3: sizes of the TAU traces vs the time-independent traces, and the
// action counts, for LU classes B and C on 8..64 processes.
//
// Paper shapes to reproduce:
//   - TI traces are roughly an order of magnitude smaller than TAU's,
//     with the ratio slightly decreasing as processes increase;
//   - both sizes grow linearly with the process count;
//   - class C carries ~1.6x the actions of class B.
//
// Sizes are also extrapolated to the full iteration count (they scale
// linearly in the iterations actually run).
#include <cstdio>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "support/units.hpp"

using namespace tir;

int main() {
  const double scale = bench::scale();
  bench::banner("Table 3 — TAU vs time-independent trace sizes",
                "LU classes B and C, 8..64 processes; iteration fraction " +
                    std::to_string(scale) +
                    " (sizes extrapolated to the full run)");

  std::printf("%-6s %5s | %12s %14s %7s | %12s | %14s %14s\n", "class",
              "procs", "TAU (MiB)", "TI (MiB)", "ratio", "actions(M)",
              "TAU full(MiB)", "TI full(MiB)");
  for (const auto cls : {apps::NpbClass::B, apps::NpbClass::C}) {
    double prev_actions = 0;
    for (const int procs : {8, 16, 32, 64}) {
      apps::LuConfig cfg;
      cfg.cls = cls;
      cfg.nprocs = procs;
      cfg.iteration_scale = scale;

      const auto workdir = bench::fresh_workdir(
          "table3_" + apps::to_string(cls) + "_" + std::to_string(procs));
      bench::WorkdirGuard guard(workdir);

      acq::AcquisitionSpec spec;
      spec.app = apps::make_lu_app(cfg);
      spec.workdir = workdir;
      spec.run_uninstrumented_baseline = false;
      const auto r = acq::run_acquisition(spec);

      const double extrapolate =
          static_cast<double>(apps::lu_iterations(cls)) / cfg.iterations();
      const double tau_mib = r.tau_bytes / 1048576.0;
      const double ti_mib = r.ti_bytes / 1048576.0;
      std::printf("%-6s %5d | %12.1f %14.2f %7.2f | %12.2f | %14.1f %14.1f\n",
                  apps::to_string(cls).c_str(), procs, tau_mib, ti_mib,
                  tau_mib / ti_mib, r.actions / 1e6 * extrapolate,
                  tau_mib * extrapolate, ti_mib * extrapolate);
      std::fflush(stdout);
      prev_actions = static_cast<double>(r.actions);
      (void)prev_actions;
    }
  }
  std::printf("\nPaper reference (full runs): B/64: TAU 3166 MiB vs TI 345 "
              "MiB (9.18x), 22.73M actions;\nC/64: TAU 5026 MiB vs TI 552 "
              "MiB (9.1x), 36.17M actions.\n");
  return 0;
}
