// Figure 9: evolution of the (wall-clock) trace replay time with the
// number of processes, LU classes B and C.
//
// Paper shapes to reproduce: the replay time tracks the number of actions
// in the trace (Table 3's right column), because each action costs a
// simulated-process context switch in the kernel.
#include <chrono>
#include <cstdio>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"

using namespace tir;

int main() {
  const double scale = bench::scale();
  bench::banner("Figure 9 — trace replay wall-clock time vs process count",
                "LU classes B and C; iteration fraction " +
                    std::to_string(scale) +
                    " (full-run replay time extrapolates linearly)");

  std::printf("%-6s %5s | %12s %12s | %14s %16s\n", "class", "procs",
              "actions(M)", "replay (s)", "actions/sec", "ctx switches(M)");
  for (const auto cls : {apps::NpbClass::B, apps::NpbClass::C}) {
    for (const int procs : {8, 16, 32, 64}) {
      apps::LuConfig cfg;
      cfg.cls = cls;
      cfg.nprocs = procs;
      cfg.iteration_scale = scale;

      const auto workdir = bench::fresh_workdir(
          "fig9_" + apps::to_string(cls) + "_" + std::to_string(procs));
      bench::WorkdirGuard guard(workdir);

      acq::AcquisitionSpec spec;
      spec.app = apps::make_lu_app(cfg);
      spec.mode = acq::Mode::folding;
      spec.folding = std::max(1, procs / 8);
      spec.workdir = workdir;
      spec.run_uninstrumented_baseline = false;
      const auto r = acq::run_acquisition(spec);

      plat::Platform target;
      const auto hosts =
          plat::build_cluster(target, plat::bordereau_spec(procs));
      const auto traces = trace::TraceSet::per_process_files(r.ti_files);
      replay::Replayer replayer(target, hosts, traces);

      const auto start = std::chrono::steady_clock::now();
      const auto result = replayer.run();
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();

      std::printf("%-6s %5d | %12.2f %12.2f | %14.0f %16.2f\n",
                  apps::to_string(cls).c_str(), procs,
                  result.actions_replayed / 1e6, wall,
                  result.actions_replayed / wall,
                  result.engine_stats.resumes / 1e6);
      std::fflush(stdout);
    }
  }
  std::printf("\nPaper reference: replay time directly tracks the action "
              "count (36M actions for C/64\ntook several hundred seconds in "
              "SimGrid 3.6; the bottleneck is context switching).\n");
  return 0;
}
