// Ablation: design choices of the simulated MPI runtime —
//   1. binomial vs flat collectives (DESIGN.md: the original MSG replayer
//      used flat, rooted-at-0 implementations);
//   2. eager/rendezvous threshold sensitivity of the replayed time.
#include <cstdio>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "mpisim/mpi.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"

using namespace tir;

namespace {

double collective_time(int nprocs, mpi::CollectiveAlgo algo,
                       std::uint64_t bytes) {
  plat::Platform p;
  const auto hosts = plat::build_cluster(p, plat::bordereau_spec(nprocs));
  sim::Engine engine(p);
  mpi::Config cfg;
  cfg.collectives = algo;
  std::vector<int> rank_hosts(hosts.begin(), hosts.end());
  mpi::World world(engine, rank_hosts, cfg);
  world.launch([bytes](mpi::Rank& r) -> sim::Co<void> {
    for (int i = 0; i < 4; ++i) {
      co_await r.bcast(bytes, 0);
      co_await r.allreduce(64, 100);
    }
  });
  engine.run();
  return engine.now();
}

}  // namespace

int main() {
  bench::banner("Ablation — collective algorithms and eager threshold", "");

  std::printf("%-7s | %14s %14s | %8s\n", "procs", "binomial (s)", "flat (s)",
              "speedup");
  for (const int procs : {8, 16, 32, 64}) {
    const double binomial =
        collective_time(procs, mpi::CollectiveAlgo::binomial, 32 * 1024);
    const double flat =
        collective_time(procs, mpi::CollectiveAlgo::flat, 32 * 1024);
    std::printf("%-7d | %14.4f %14.4f | %7.2fx\n", procs, binomial, flat,
                flat / binomial);
  }

  // Eager threshold sweep on a replayed LU trace.
  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::A;
  cfg.nprocs = 16;
  cfg.iteration_scale = bench::scale();
  const auto workdir = bench::fresh_workdir("abl_coll");
  bench::WorkdirGuard guard(workdir);
  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  const auto r = acq::run_acquisition(spec);
  const auto traces = trace::TraceSet::per_process_files(r.ti_files);

  std::printf("\nLU A/16 replayed time vs eager/rendezvous threshold:\n");
  std::printf("%-14s | %12s\n", "threshold", "replayed (s)");
  for (const std::uint64_t threshold :
       {std::uint64_t{0}, std::uint64_t{1} << 10, std::uint64_t{16} << 10,
        std::uint64_t{64} << 10, std::uint64_t{1} << 30}) {
    plat::Platform target;
    const auto hosts = plat::build_cluster(target, plat::bordereau_spec(16));
    replay::ReplayConfig rc;
    rc.mpi.eager_threshold = threshold;
    replay::Replayer replayer(target, hosts, traces, rc);
    std::printf("%-14llu | %12.3f\n",
                static_cast<unsigned long long>(threshold),
                replayer.run().simulated_time);
    std::fflush(stdout);
  }
  std::printf("\nA zero threshold forces every message through the "
              "rendezvous handshake\n(synchronous sends, the original MSG "
              "behaviour); a huge threshold makes\neverything eager.\n");
  return 0;
}
