// Sweep-runner scaling: 64 what-if scenarios over one shared trace set,
// serial loop vs 8-worker SweepRunner.
//
// This is the workload shape behind Table 2 and the sensitivity analyses of
// Cornebize & Legrand (2021): many independent replays of the same
// immutable inputs. The scenario layer makes them embarrassingly parallel;
// on a machine with >= 8 cores the 8-worker sweep must beat the serial
// loop by >= 4x wall-clock while producing bit-identical simulated times.
// On smaller machines the speedup degrades gracefully (it is reported, and
// checked only against the locally available parallelism).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/sweep.hpp"
#include "trace/text_format.hpp"

using namespace tir;
using namespace tir::replay;

namespace {

// A stencil-ish exchange trace with per-iteration compute: big enough that
// one replay takes a measurable slice of a second.
std::vector<std::vector<trace::Action>> synthetic_actions(int nprocs,
                                                          int iterations) {
  using trace::Action;
  using trace::ActionType;
  std::vector<std::vector<Action>> per(static_cast<std::size_t>(nprocs));
  for (int it = 0; it < iterations; ++it) {
    for (int p = 0; p < nprocs; ++p) {
      auto& mine = per[static_cast<std::size_t>(p)];
      const int left = (p + nprocs - 1) % nprocs;
      const int right = (p + 1) % nprocs;
      mine.push_back({p, ActionType::irecv, left, 0, 0, 0});
      mine.push_back({p, ActionType::isend, right, 32 * 1024, 0, 0});
      mine.push_back({p, ActionType::compute, -1, 2e6, 0, 0});
      mine.push_back({p, ActionType::wait, -1, 0, 0, 0});
      mine.push_back({p, ActionType::wait, -1, 0, 0, 0});
      if (it % 8 == 7) mine.push_back({p, ActionType::allreduce, -1,
                                       1024, 1e4, 0});
    }
  }
  return per;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const int kScenarios = 64;
  const int kWorkers = 8;
  const int nprocs = 16;
  const int iterations = std::max(4, static_cast<int>(200 * bench::scale()));

  bench::banner("Sweep — 64 scenarios, serial loop vs 8-worker SweepRunner",
                "shared platform + decoded-once traces; "
                + std::to_string(nprocs) + " ranks, "
                + std::to_string(iterations) + " iterations per trace");

  // Traces on disk: the sweep also demonstrates decode-once sharing.
  const auto workdir = bench::fresh_workdir("sweep");
  bench::WorkdirGuard guard(workdir);
  const auto files =
      trace::write_split_traces(workdir, synthetic_actions(nprocs,
                                                           iterations));
  const auto traces = trace::TraceSet::per_process_files(files);

  const auto platform = std::make_shared<plat::Platform>();
  const auto hosts =
      plat::build_cluster(*platform, plat::bordereau_spec(nprocs));

  std::vector<ScenarioSpec> scenarios;
  for (int i = 0; i < kScenarios; ++i) {
    ScenarioSpec spec;
    spec.name = "whatif-" + std::to_string(i);
    spec.platform = platform;
    spec.process_hosts = hosts;
    spec.traces = traces;
    spec.config.compute_efficiency = 0.25 + 0.01 * i;
    scenarios.push_back(std::move(spec));
  }

  // Warm the decode cache outside the timed region for a fair serial
  // baseline (the serial loop it replaces re-used parsed traces too).
  (void)traces.stats();

  const auto t_serial0 = std::chrono::steady_clock::now();
  const auto serial = run_sweep(scenarios, {.workers = 1});
  const double t_serial = seconds_since(t_serial0);

  const auto t_par0 = std::chrono::steady_clock::now();
  const auto parallel = run_sweep(scenarios, {.workers = kWorkers});
  const double t_par = seconds_since(t_par0);

  bool identical = true;
  for (int i = 0; i < kScenarios; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!serial[idx].ok || !parallel[idx].ok) {
      std::printf("scenario %d FAILED: %s%s\n", i,
                  serial[idx].error.c_str(), parallel[idx].error.c_str());
      return 1;
    }
    const double a = serial[idx].replay.simulated_time;
    const double b = parallel[idx].replay.simulated_time;
    if (std::memcmp(&a, &b, sizeof a) != 0) {
      identical = false;
      std::printf("scenario %d DIVERGES: serial %.17g parallel %.17g\n",
                  i, a, b);
    }
  }

  const double speedup = t_par > 0 ? t_serial / t_par : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\n%-28s %10.3f s\n", "serial (1 worker):", t_serial);
  std::printf("%-28s %10.3f s\n",
              ("parallel (" + std::to_string(kWorkers) +
               " workers):").c_str(), t_par);
  std::printf("%-28s %10.2fx   (hardware threads: %u)\n", "speedup:",
              speedup, hw);
  std::printf("%-28s %10s\n", "bit-identical results:",
              identical ? "yes" : "NO");
  std::printf("%-28s %10llu   (files: %zu)\n", "trace decode passes:",
              static_cast<unsigned long long>(traces.decode_count()),
              files.size());

  if (!identical) return 1;
  if (traces.decode_count() != files.size()) {
    std::printf("FAIL: expected exactly one decode per trace file\n");
    return 1;
  }
  // The >= 4x acceptance bar presumes >= 8 cores; scale it to the machine.
  const double required =
      hw >= 8 ? 4.0 : (hw >= 4 ? 2.0 : (hw >= 2 ? 1.3 : 0.0));
  if (speedup < required) {
    std::printf("FAIL: speedup %.2fx below the %.1fx bar for %u threads\n",
                speedup, required, hw);
    return 1;
  }
  std::printf("\nOK\n");
  return 0;
}
