// Figure 7: distribution of the acquisition time (Application, Tracing
// overhead, Extraction, Gathering) for LU classes B and C on 8..64
// processes, Regular mode on bordereau.
//
// Paper shapes to reproduce:
//   - the application execution dominates and shrinks ~linearly with the
//     process count (until the sequential part bites, B/64);
//   - extraction + gathering stay below ~35% of the total;
//   - gathering is the smallest slice but grows with the process count.
#include <cstdio>
#include <vector>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"

using namespace tir;

int main() {
  const double scale = bench::scale();
  bench::banner("Figure 7 — acquisition time distribution (Regular mode)",
                "LU classes B and C, 8..64 processes; iteration fraction " +
                    std::to_string(scale));

  std::printf("%-6s %5s | %12s %12s %12s %12s | %8s %9s\n", "class", "procs",
              "app (s)", "tracing (s)", "extract (s)", "gather (s)",
              "total(s)", "ext+gat %");
  for (const auto cls : {apps::NpbClass::B, apps::NpbClass::C}) {
    for (const int procs : {8, 16, 32, 64}) {
      apps::LuConfig cfg;
      cfg.cls = cls;
      cfg.nprocs = procs;
      cfg.iteration_scale = scale;

      const auto workdir = bench::fresh_workdir(
          "fig7_" + apps::to_string(cls) + "_" + std::to_string(procs));
      bench::WorkdirGuard guard(workdir);

      acq::AcquisitionSpec spec;
      spec.app = apps::make_lu_app(cfg);
      spec.workdir = workdir;
      const auto r = acq::run_acquisition(spec);

      const double total = r.total_acquisition_time();
      const double ext_gat_pct =
          100.0 * (r.extraction_time + r.gather_time) / total;
      std::printf("%-6s %5d | %12.2f %12.2f %12.3f %12.3f | %8.2f %8.1f%%\n",
                  apps::to_string(cls).c_str(), procs, r.app_time,
                  r.tracing_overhead, r.extraction_time, r.gather_time, total,
                  ext_gat_pct);
      std::fflush(stdout);
    }
  }
  std::printf("\nPaper reference: Class B, 64 procs shows the worst "
              "extraction+gathering share (34.91%%);\napplication time "
              "decreases roughly linearly with the process count.\n");
  return 0;
}
