// Ablation: the three on-disk trace representations — text (the paper's
// format), binary (its "future work" §7), and the compact loop-compressed
// program (the "compact trace representations" of the related work [12]) —
// compared on size and on end-to-end replay agreement for a real LU trace.
#include <chrono>
#include <cstdio>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "trace/binary_format.hpp"
#include "trace/compact.hpp"
#include "trace/text_format.hpp"

using namespace tir;
namespace fs = std::filesystem;

int main() {
  bench::banner("Ablation — text vs binary vs compact trace formats",
                "LU class A on 16 processes");

  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::A;
  cfg.nprocs = 16;
  cfg.iteration_scale = bench::scale();
  const auto workdir = bench::fresh_workdir("abl_compact");
  bench::WorkdirGuard guard(workdir);

  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  const auto report = acq::run_acquisition(spec);

  // Convert every per-process trace into the two alternative formats.
  std::vector<fs::path> binary_files, compact_files;
  std::uint64_t text_bytes = 0, binary_bytes = 0, compact_bytes = 0;
  std::uint64_t compact_blocks = 0;
  for (int p = 0; p < cfg.nprocs; ++p) {
    const auto& text = report.ti_files[static_cast<std::size_t>(p)];
    text_bytes += fs::file_size(text);
    const auto bin = workdir / ("SG_process" + std::to_string(p) + ".btrace");
    binary_bytes += trace::text_to_binary(text, bin);
    binary_files.push_back(bin);
    const auto actions = trace::read_all(text);
    const auto program = trace::compact_actions(actions);
    compact_blocks += program.size();
    const auto cmp = workdir / ("SG_process" + std::to_string(p) + ".ctrace");
    compact_bytes += trace::write_compact(cmp, program, p);
    compact_files.push_back(cmp);
  }

  std::printf("%-10s | %12s | %10s\n", "format", "bytes", "vs text");
  std::printf("%-10s | %12llu | %9.2fx\n", "text",
              static_cast<unsigned long long>(text_bytes), 1.0);
  std::printf("%-10s | %12llu | %9.2fx\n", "binary",
              static_cast<unsigned long long>(binary_bytes),
              static_cast<double>(text_bytes) / binary_bytes);
  std::printf("%-10s | %12llu | %9.2fx  (%llu loop blocks for %llu "
              "actions)\n", "compact",
              static_cast<unsigned long long>(compact_bytes),
              static_cast<double>(text_bytes) / compact_bytes,
              static_cast<unsigned long long>(compact_blocks),
              static_cast<unsigned long long>(report.actions));

  // Replay each representation: the predicted time must be identical.
  plat::Platform target;
  const auto hosts =
      plat::build_cluster(target, plat::bordereau_spec(cfg.nprocs));
  const auto replay_set = [&](const std::vector<fs::path>& files) {
    const auto traces = trace::TraceSet::per_process_files(files);
    replay::Replayer replayer(target, hosts, traces);
    const auto start = std::chrono::steady_clock::now();
    const double t = replayer.run().simulated_time;
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return std::make_pair(t, wall);
  };
  const auto [t_text, w_text] = replay_set(report.ti_files);
  const auto [t_bin, w_bin] = replay_set(binary_files);
  const auto [t_cmp, w_cmp] = replay_set(compact_files);
  std::printf("\nreplayed time: text %.6f s | binary %.6f s | compact %.6f "
              "s (all equal: %s)\n", t_text, t_bin, t_cmp,
              (t_text == t_bin && t_bin == t_cmp) ? "yes" : "NO");
  std::printf("replay wall:   text %.2f s | binary %.2f s | compact %.2f s\n",
              w_text, w_bin, w_cmp);
  return 0;
}
