// Large traces, end to end: bounded-memory streaming replay of a synthetic
// 10^8-action NPB-style trace (the ROADMAP scale target), the streamed-vs-
// materialised overhead on an in-RAM trace, and the paper's §6.5
// acquisition run (LU class D on 1,024 processes, folded 8-per-node).
//
// Phase 1 — streaming replay. A CG-pattern compact trace (8 ranks, the
//   iteration loop stored as one TIRC repeat block, so the file is a few
//   hundred bytes however many actions it expands to) is replayed with
//   decode=stream. The assertion the subsystem hangs on: peak RSS stays
//   under 512 MiB however large the logical trace is. Runs FIRST so the
//   process-wide VmHWM reflects only this phase.
//   Scale: TIR_SCALE=0.1 (default) -> 10^7 actions, TIR_FULL=1 -> 10^8;
//   TIR_STREAM_ACTIONS=<n> overrides directly (recording the full-scale
//   number without dragging phase 3 to full scale).
// Phase 2 — streaming overhead. An in-RAM-sized text trace replayed under
//   both decode policies: reports must be bit-identical and the streamed
//   wall time within 1.2x materialised.
// Phase 3 — §6.5 acquisition. Paper numbers (full run): < 25 min to
//   acquire; TI trace 32.5 GiB, 7.8x smaller than the 252.5 GiB TAU
//   trace; 1.2 GiB gzip'd. The default run executes 2 of 300 iterations
//   and extrapolates the sizes (linear in the iteration count).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/scenario.hpp"
#include "support/units.hpp"
#include "trace/binary_format.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_set.hpp"

using namespace tir;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Peak resident set (VmHWM) from /proc/self/status, in bytes; 0 when
/// unavailable (non-Linux), which disables the RSS assertion.
std::uint64_t peak_rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::uint64_t kb = 0;
    std::sscanf(line.c_str(), "VmHWM: %llu",
                reinterpret_cast<unsigned long long*>(&kb));
    return kb * 1024;
  }
  return 0;
}

replay::ScenarioSpec cluster_scenario(int nprocs, trace::TraceSet traces) {
  auto platform = std::make_shared<plat::Platform>();
  const auto hosts =
      plat::build_cluster(*platform, plat::bordereau_spec(nprocs));
  replay::ScenarioSpec spec;
  spec.name = "large-trace";
  spec.platform = platform;
  spec.process_hosts = hosts;
  spec.traces = std::move(traces);
  spec.config.fast_path = true;
  return spec;
}

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

int fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main() {
  const double scale = bench::scale();
  constexpr int kRanks = 8;
  constexpr std::uint64_t kPerIteration = 5;  // CG pattern

  // Phase-1 logical size: 10^8 actions at full scale, scaled down but
  // never below 10^6 so the streaming path is always genuinely exercised.
  std::uint64_t target_actions = static_cast<std::uint64_t>(1e8 * scale);
  if (target_actions < 1'000'000) target_actions = 1'000'000;
  if (const char* env = std::getenv("TIR_STREAM_ACTIONS"))
    target_actions = std::strtoull(env, nullptr, 0);

  bench::banner("Large traces — streaming replay (10^8-action target) and "
                "the Section 6.5 acquisition",
                "scale " + std::to_string(scale));

  const auto workdir = bench::fresh_workdir("large_trace");
  bench::WorkdirGuard guard(workdir);

  // -------------------------------------------------------------------
  // Phase 1: bounded-memory streaming replay of a huge compact trace.
  // -------------------------------------------------------------------
  trace::SyntheticSpec syn;
  syn.pattern = trace::SyntheticPattern::cg;
  syn.nprocs = kRanks;
  syn.iterations =
      (target_actions / kRanks + kPerIteration - 1) / kPerIteration;
  const auto files = trace::write_synthetic_traces(workdir / "stream", syn);
  const std::uint64_t actions = trace::synthetic_actions(syn);
  std::uint64_t disk_bytes = 0;
  for (const auto& f : files)
    disk_bytes += std::filesystem::file_size(f);

  auto streamed_set = trace::TraceSet::per_process_files(
      files, trace::DecodeMode::strict, trace::DecodePolicy::stream);
  const auto t0 = std::chrono::steady_clock::now();
  const auto streamed =
      replay::run_scenario_report(cluster_scenario(kRanks, streamed_set));
  const double stream_wall = seconds_since(t0);
  const std::uint64_t peak = peak_rss_bytes();

  std::printf("\nphase 1 — streaming replay (CG pattern, %d ranks)\n",
              kRanks);
  std::printf("logical actions:          %" PRIu64 " (%.1fM)\n", actions,
              actions / 1e6);
  std::printf("compact trace on disk:    %s\n",
              units::format_bytes(static_cast<double>(disk_bytes)).c_str());
  std::printf("materialised would be:    %s\n",
              units::format_bytes(static_cast<double>(actions) *
                                  sizeof(trace::Action)).c_str());
  std::printf("index resident bytes:     %s\n",
              units::format_bytes(
                  static_cast<double>(streamed_set.resident_bytes()))
                  .c_str());
  std::printf("replay wall time:         %.2f s (%.2fM actions/s)\n",
              stream_wall, actions / stream_wall / 1e6);
  std::printf("simulated time:           %.4f s\n",
              streamed.result.simulated_time);
  std::printf("peak RSS (VmHWM):         %s (bound: 512 MiB)\n",
              units::format_bytes(static_cast<double>(peak)).c_str());
  if (streamed.status != replay::ReplayStatus::ok)
    return fail("streaming replay did not complete");
  if (streamed.result.actions_replayed != actions)
    return fail("streaming replay lost actions");
  if (peak != 0 && peak > 512ull << 20)
    return fail("peak RSS exceeded the 512 MiB bound");

  // -------------------------------------------------------------------
  // Phase 2: streamed-vs-materialised overhead on an in-RAM trace.
  // -------------------------------------------------------------------
  trace::SyntheticSpec ram;
  ram.pattern = trace::SyntheticPattern::cg;
  ram.nprocs = kRanks;
  ram.iterations = 25'000;  // ~10^6 actions: comfortably in RAM
  const auto ram_files =
      trace::write_synthetic_traces(workdir / "ram", ram, "text");
  const std::uint64_t ram_actions = trace::synthetic_actions(ram);

  // Best of three per policy: the bound is on decode overhead, not on
  // scheduler noise, so take the cleanest run of each.
  double wall[2] = {0.0, 0.0};
  replay::ReplayReport reports[2];
  const trace::DecodePolicy policies[2] = {trace::DecodePolicy::materialise,
                                           trace::DecodePolicy::stream};
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 2; ++i) {
      auto set = trace::TraceSet::per_process_files(
          ram_files, trace::DecodeMode::strict, policies[i]);
      const auto t1 = std::chrono::steady_clock::now();
      auto report =
          replay::run_scenario_report(cluster_scenario(kRanks, std::move(set)));
      const double w = seconds_since(t1);
      if (rep == 0 || w < wall[i]) wall[i] = w;
      reports[i] = std::move(report);
    }
  }
  const double ratio = wall[1] / wall[0];
  std::printf("\nphase 2 — decode overhead (text codec, %.1fM actions, "
              "in RAM)\n", ram_actions / 1e6);
  std::printf("materialised replay:      %.2f s (decode + replay)\n",
              wall[0]);
  std::printf("streamed replay:          %.2f s\n", wall[1]);
  std::printf("stream / materialise:     %.2fx (bound: 1.2x)\n", ratio);
  if (reports[0].status != replay::ReplayStatus::ok ||
      reports[1].status != replay::ReplayStatus::ok)
    return fail("overhead replay did not complete");
  if (!bit_equal(reports[0].result.simulated_time,
                 reports[1].result.simulated_time) ||
      reports[0].result.actions_replayed !=
          reports[1].result.actions_replayed)
    return fail("streamed report differs from materialised");
  // Wall-clock assertions are noise below ~1M actions (smoke scales).
  if (ram_actions >= 1'000'000 && ratio > 1.2)
    return fail("streamed replay slower than 1.2x materialised");

  // -------------------------------------------------------------------
  // Phase 3: the paper's Section 6.5 acquisition (class D, 1024 ranks,
  // mode F-8). Class D at 1,024 ranks is ~150x a class B/64 run: keep
  // the default fraction small (2 of 300 iterations) and extrapolate.
  // -------------------------------------------------------------------
  const double lu_scale = scale >= 1.0 ? 1.0 : 2.0 / 300.0;
  std::printf("\nphase 3 — Section 6.5 acquisition (class D, 1024 "
              "processes, mode F-8; iteration fraction %g)\n", lu_scale);

  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::D;
  cfg.nprocs = 1024;
  cfg.iteration_scale = lu_scale;

  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.mode = acq::Mode::folding;
  spec.folding = 8;  // 1024 ranks on 128 cores of 32 nodes, as in §6.5
  spec.workdir = workdir / "acq";
  std::filesystem::create_directories(spec.workdir);
  spec.run_uninstrumented_baseline = false;
  const auto r = acq::run_acquisition(spec);

  const double extrapolate =
      static_cast<double>(apps::lu_iterations(cfg.cls)) / cfg.iterations();
  std::printf("nodes used:               %d (folding factor 8)\n",
              r.nodes_used);
  std::printf("instrumented execution:   %s (simulated)\n",
              units::format_duration(r.instrumented_time).c_str());
  std::printf("extraction + gathering:   %s + %s\n",
              units::format_duration(r.extraction_time).c_str(),
              units::format_duration(r.gather_time).c_str());
  std::printf("actions:                  %.1fM (full run: %.0fM)\n",
              r.actions / 1e6, r.actions / 1e6 * extrapolate);
  std::printf("TAU trace:                %s (full run: %s; paper: 252.5 "
              "GiB)\n",
              units::format_bytes(static_cast<double>(r.tau_bytes)).c_str(),
              units::format_bytes(r.tau_bytes * extrapolate).c_str());
  std::printf("TI trace:                 %s (full run: %s; paper: 32.5 "
              "GiB)\n",
              units::format_bytes(static_cast<double>(r.ti_bytes)).c_str(),
              units::format_bytes(r.ti_bytes * extrapolate).c_str());
  std::printf("TAU / TI size ratio:      %.2f (paper: 7.8)\n",
              static_cast<double>(r.tau_bytes) / r.ti_bytes);

  // The paper compresses the TI trace with gzip (1.2 GiB); our binary
  // trace format (the paper's "future work") plays the same role.
  std::uint64_t binary_bytes = 0;
  for (std::size_t p = 0; p < std::min<std::size_t>(r.ti_files.size(), 64);
       ++p) {
    const auto out = spec.workdir / ("bin" + std::to_string(p));
    binary_bytes += trace::text_to_binary(r.ti_files[p], out);
  }
  const double sampled_fraction =
      std::min<std::size_t>(r.ti_files.size(), 64) /
      static_cast<double>(r.ti_files.size());
  const double binary_total = binary_bytes / sampled_fraction;
  std::printf("binary TI format:         %s (full run: %s; paper gzip: "
              "1.2 GiB)\n",
              units::format_bytes(binary_total).c_str(),
              units::format_bytes(binary_total * extrapolate).c_str());
  return 0;
}
