// §6.5: acquiring a large trace — LU class D on 1,024 processes, folded
// 8-per-node on 32 nodes (about a third of bordereau), a problem instance
// ~3x bigger than the cluster's core count.
//
// Paper numbers (full run): < 25 minutes to acquire; TI trace 32.5 GiB,
// 7.8x smaller than the 252.5 GiB TAU trace; 1.2 GiB once gzip'd.
// The default run executes a documented fraction of the 300 iterations and
// extrapolates the sizes (they are linear in the iteration count).
#include <cstdio>
#include <cstdlib>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "support/units.hpp"
#include "trace/binary_format.hpp"

using namespace tir;

int main() {
  // Class D at 1,024 ranks is ~150x a class B/64 run: keep the default
  // fraction small (2 of 300 iterations) and extrapolate.
  const double scale = bench::scale() >= 1.0 ? 1.0 : 2.0 / 300.0;
  bench::banner("Section 6.5 — acquiring a large trace (class D, 1024 "
                "processes, mode F-8)",
                "iteration fraction " + std::to_string(scale));

  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::D;
  cfg.nprocs = 1024;
  cfg.iteration_scale = scale;

  const auto workdir = bench::fresh_workdir("large_trace");
  bench::WorkdirGuard guard(workdir);

  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.mode = acq::Mode::folding;
  spec.folding = 8;  // 1024 ranks on 128 cores of 32 nodes, as in §6.5
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  const auto r = acq::run_acquisition(spec);

  const double extrapolate =
      static_cast<double>(apps::lu_iterations(cfg.cls)) / cfg.iterations();
  std::printf("nodes used:               %d (folding factor 8)\n",
              r.nodes_used);
  std::printf("instrumented execution:   %s (simulated)\n",
              units::format_duration(r.instrumented_time).c_str());
  std::printf("extraction + gathering:   %s + %s\n",
              units::format_duration(r.extraction_time).c_str(),
              units::format_duration(r.gather_time).c_str());
  std::printf("actions:                  %.1fM (full run: %.0fM)\n",
              r.actions / 1e6, r.actions / 1e6 * extrapolate);
  std::printf("TAU trace:                %s (full run: %s; paper: 252.5 "
              "GiB)\n",
              units::format_bytes(static_cast<double>(r.tau_bytes)).c_str(),
              units::format_bytes(r.tau_bytes * extrapolate).c_str());
  std::printf("TI trace:                 %s (full run: %s; paper: 32.5 "
              "GiB)\n",
              units::format_bytes(static_cast<double>(r.ti_bytes)).c_str(),
              units::format_bytes(r.ti_bytes * extrapolate).c_str());
  std::printf("TAU / TI size ratio:      %.2f (paper: 7.8)\n",
              static_cast<double>(r.tau_bytes) / r.ti_bytes);

  // The paper compresses the TI trace with gzip (1.2 GiB); our binary
  // trace format (the paper's "future work") plays the same role.
  std::uint64_t binary_bytes = 0;
  for (std::size_t p = 0; p < std::min<std::size_t>(r.ti_files.size(), 64);
       ++p) {
    const auto out = workdir / ("bin" + std::to_string(p));
    binary_bytes += trace::text_to_binary(r.ti_files[p], out);
  }
  const double sampled_fraction =
      std::min<std::size_t>(r.ti_files.size(), 64) /
      static_cast<double>(r.ti_files.size());
  const double binary_total = binary_bytes / sampled_fraction;
  std::printf("binary TI format:         %s (full run: %s; paper gzip: "
              "1.2 GiB)\n",
              units::format_bytes(binary_total).c_str(),
              units::format_bytes(binary_total * extrapolate).c_str());
  return 0;
}
