// Microbenchmarks of the simulation kernel itself: max-min solver
// throughput, event-loop rate, and end-to-end simulated-messages rate —
// the quantities that bound Figure 9's replay speed.
#include <benchmark/benchmark.h>

#include "mpisim/mpi.hpp"
#include "platform/cluster.hpp"
#include "simkern/engine.hpp"
#include "simkern/maxmin.hpp"

using namespace tir;

namespace {

void BM_MaxMinSolve(benchmark::State& state) {
  const int n_vars = static_cast<int>(state.range(0));
  sim::MaxMin lmm;
  std::vector<sim::ResourceId> resources;
  for (int i = 0; i < 64; ++i) resources.push_back(lmm.add_resource(1e9));
  std::vector<sim::VarId> vars;
  for (int i = 0; i < n_vars; ++i) {
    vars.push_back(lmm.add_variable(
        1.0, {resources[static_cast<std::size_t>(i % 64)],
              resources[static_cast<std::size_t>((i * 7) % 64)]}));
  }
  std::size_t toggle = 0;
  for (auto _ : state) {
    // Remove and re-add one variable to dirty the system, then solve.
    const auto v = vars[toggle % vars.size()];
    lmm.remove_variable(v);
    vars[toggle % vars.size()] = lmm.add_variable(
        1.0, {resources[toggle % 64], resources[(toggle * 7) % 64]});
    lmm.solve();
    ++toggle;
    benchmark::DoNotOptimize(lmm.rate(vars[0]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxMinSolve)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineTimers(benchmark::State& state) {
  // Pure event-loop throughput: a process sleeping in a tight loop.
  for (auto _ : state) {
    state.PauseTiming();
    plat::Platform p;
    const auto hosts = plat::build_bordereau(p, 1);
    sim::Engine engine(p);
    engine.spawn("sleeper", hosts[0], [&engine](sim::Process&) -> sim::Task {
      for (int i = 0; i < 10000; ++i)
        co_await engine.wait(engine.timer_async(1e-6));
    });
    state.ResumeTiming();
    engine.run();
    benchmark::DoNotOptimize(engine.stats().heap_events);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineTimers)->Unit(benchmark::kMillisecond);

void BM_SimulatedMessages(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    plat::Platform p;
    const auto hosts = plat::build_bordereau(p, nprocs);
    sim::Engine engine(p);
    std::vector<int> rank_hosts(hosts.begin(), hosts.end());
    mpi::World world(engine, rank_hosts);
    world.launch([](mpi::Rank& r) -> sim::Co<void> {
      const int peer = r.rank() ^ 1;
      for (int i = 0; i < 500; ++i) {
        if (r.rank() < peer) {
          co_await r.send(peer, 1024, 0);
          co_await r.recv(peer, 1024, 0);
        } else {
          co_await r.recv(peer, 1024, 0);
          co_await r.send(peer, 1024, 0);
        }
      }
    });
    state.ResumeTiming();
    engine.run();
    benchmark::DoNotOptimize(engine.now());
  }
  state.SetItemsProcessed(state.iterations() * 500 * state.range(0));
  state.SetLabel("messages");
}
BENCHMARK(BM_SimulatedMessages)->Arg(2)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
