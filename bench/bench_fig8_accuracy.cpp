// Figure 8: accuracy of the time-independent trace replay — simulated vs
// actual execution time of LU classes B and C on 8..64 bordereau nodes.
//
// "Actual" is the direct high-fidelity simulation of the application on
// the physical platform (per-phase variable flop rates standing in for the
// real cluster, per DESIGN.md's substitution table). "Simulated" is the
// trace replay on a platform calibrated with the §5 procedure (one
// small-instance flop rate for everything — the very approximation the
// paper blames for its up-to-51.5% local error).
//
// Shapes to reproduce: the replay follows the actual trend; the local
// relative error is visible and not constant across process counts.
#include <cstdio>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/calibration.hpp"
#include "replay/replayer.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

using namespace tir;

int main() {
  const double scale = bench::scale();
  bench::banner("Figure 8 — simulated vs actual execution time",
                "LU classes B and C on bordereau; iteration fraction " +
                    std::to_string(scale));

  // Calibrate once, exactly as §5 prescribes: small instance, five runs.
  const auto cal_dir = bench::fresh_workdir("fig8_cal");
  bench::WorkdirGuard cal_guard(cal_dir);
  apps::LuConfig small;
  small.cls = apps::NpbClass::W;
  small.nprocs = 4;
  small.iteration_scale = 0.02;
  replay::CalibrationSpec cal;
  cal.small_instance = apps::make_lu_app(small);
  cal.repetitions = 5;
  cal.workdir = cal_dir;
  cal.instrument.counter_jitter = 1e-3;
  const auto calibration = replay::calibrate_flop_rate(cal);
  std::printf("calibrated flop rate: %s (paper's Figure 5: 1.17 Gflop/s)\n\n",
              units::format_flops_rate(calibration.flop_rate).c_str());

  std::printf("%-6s %5s | %12s %12s | %9s\n", "class", "procs", "actual (s)",
              "simulated(s)", "error %");
  for (const auto cls : {apps::NpbClass::B, apps::NpbClass::C}) {
    for (const int procs : {8, 16, 32, 64}) {
      apps::LuConfig cfg;
      cfg.cls = cls;
      cfg.nprocs = procs;
      cfg.iteration_scale = scale;
      const auto app = apps::make_lu_app(cfg);

      // "Actual": direct execution on the physical platform.
      const auto ap =
          acq::build_acquisition_platform(acq::Mode::regular, procs, 1);
      double actual = 0;
      {
        sim::Engine engine(ap.platform);
        mpi::World world(engine, ap.rank_hosts);
        world.launch(
            [&app](mpi::Rank& r) -> sim::Co<void> { co_await app.body(r); });
        engine.run();
        actual = engine.now();
      }

      // Acquire the trace (folding keeps this bench light), then replay on
      // the calibrated target.
      const auto workdir = bench::fresh_workdir(
          "fig8_" + apps::to_string(cls) + "_" + std::to_string(procs));
      bench::WorkdirGuard guard(workdir);
      acq::AcquisitionSpec spec;
      spec.app = app;
      spec.mode = procs > 8 ? acq::Mode::folding : acq::Mode::regular;
      spec.folding = procs > 8 ? 4 : 1;
      spec.workdir = workdir;
      spec.run_uninstrumented_baseline = false;
      const auto r = acq::run_acquisition(spec);

      plat::Platform target;
      auto target_spec = plat::bordereau_spec(procs);
      target_spec.power = calibration.flop_rate;
      const auto hosts = plat::build_cluster(target, target_spec);
      const auto traces = trace::TraceSet::per_process_files(r.ti_files);
      replay::Replayer replayer(target, hosts, traces);
      const double simulated = replayer.run().simulated_time;

      std::printf("%-6s %5d | %12.2f %12.2f | %8.1f%%\n",
                  apps::to_string(cls).c_str(), procs, actual, simulated,
                  100.0 * tir::relative_error(simulated, actual));
      std::fflush(stdout);
    }
  }
  std::printf("\nPaper reference: correct trend, local relative error up to "
              "51.5%% (B/64),\nblamed on the single calibrated flop rate vs "
              "LU's phase-dependent rates.\n");
  return 0;
}
