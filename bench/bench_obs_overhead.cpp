// Observability overhead: replaying the Figure 9 LU B/64 instance with the
// span recorder off, on, and in activity-detail mode. The acceptance bar
// for the subsystem is that the *disabled* recorder costs nothing
// measurable (< 2% — it is one null-pointer branch per operation) and the
// enabled recorder stays cheap enough to leave on during sweeps.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"

using namespace tir;

namespace {

double replay_seconds(const plat::Platform& platform,
                      const std::vector<int>& hosts,
                      const trace::TraceSet& traces,
                      const replay::ReplayConfig& config, int reps,
                      std::uint64_t* spans_out) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    replay::Replayer replayer(platform, hosts, traces, config);
    const auto start = std::chrono::steady_clock::now();
    const auto result = replayer.run();
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count());
    *spans_out = result.spans ? result.spans->total_spans() : 0;
  }
  return best;
}

}  // namespace

int main() {
  const double scale = bench::scale();
  bench::banner("Observability overhead — LU B/64 replay, recorder modes",
                "iteration fraction " + std::to_string(scale) +
                    "; best of 3 runs per mode");

  apps::LuConfig cfg;
  cfg.cls = apps::NpbClass::B;
  cfg.nprocs = 64;
  cfg.iteration_scale = scale;

  const auto workdir = bench::fresh_workdir("obs_overhead");
  bench::WorkdirGuard guard(workdir);
  acq::AcquisitionSpec spec;
  spec.app = apps::make_lu_app(cfg);
  spec.mode = acq::Mode::folding;
  spec.folding = 8;
  spec.workdir = workdir;
  spec.run_uninstrumented_baseline = false;
  const auto acquired = acq::run_acquisition(spec);

  plat::Platform platform;
  const auto hosts =
      plat::build_cluster(platform, plat::bordereau_spec(cfg.nprocs));
  const auto traces = trace::TraceSet::per_process_files(acquired.ti_files);
  (void)traces.stats();  // decode once, outside the timed region

  struct Mode {
    const char* name = "";
    replay::ReplayConfig config;
  };
  Mode modes[3];
  modes[0].name = "off";
  modes[1].name = "spans";
  modes[1].config.record_spans = true;
  modes[2].name = "detail";
  modes[2].config.record_spans = true;
  modes[2].config.span_activity_detail = true;

  {  // warm-up: touch the decoded actions and the allocator once, untimed
    std::uint64_t spans = 0;
    (void)replay_seconds(platform, hosts, traces, modes[0].config, 1, &spans);
  }

  std::printf("%-8s | %10s %10s %12s\n", "recorder", "replay (s)",
              "vs off", "spans");
  double baseline = 0.0;
  for (const Mode& mode : modes) {
    std::uint64_t spans = 0;
    const double secs =
        replay_seconds(platform, hosts, traces, mode.config, 3, &spans);
    if (baseline == 0.0) baseline = secs;
    std::printf("%-8s | %10.3f %+9.2f%% %12llu\n", mode.name, secs,
                100.0 * (secs - baseline) / baseline,
                static_cast<unsigned long long>(spans));
    std::fflush(stdout);
  }
  return 0;
}
