// Figure 9 extension: replay throughput with the parallel replay engine.
//
// The baseline bench (bench_fig9_replaytime) reproduces the paper's falling
// curve — actions/sec *drop* with rank count because every action costs a
// coroutine switch and every flow change a solver pass over the coupled
// component. This bench replays the same LU traces through the three engine
// configurations side by side:
//   sequential   the bit-exactness reference (ReplayConfig defaults)
//   fast-path    deterministic action chains run inline, no switches
//   fp+shards    fast path + disconnected solver components filled on a
//                ShardPool (conservative barrier per solver epoch)
// All three produce bit-identical simulated times (asserted here, and by
// tests/parallel_replay_test.cpp at full depth); only wall-clock differs.
//
// Rank counts: TIR_FIG9_PROCS=8,64,256 (comma list, powers of two) extends
// to 1024 when you have the minutes — see EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "support/strings.hpp"

using namespace tir;

namespace {

std::vector<int> proc_counts() {
  std::vector<int> procs;
  if (const char* env = std::getenv("TIR_FIG9_PROCS")) {
    for (const auto tok : str::split(env, ','))
      procs.push_back(std::atoi(std::string(tok).c_str()));
  }
  if (procs.empty()) procs = {8, 64, 256};
  return procs;
}

}  // namespace

int main() {
  const double scale = bench::scale();
  const int shards = 8;
  bench::banner(
      "Figure 9 (parallel engine) — replay throughput vs process count",
      "LU class B; iteration fraction " + std::to_string(scale) +
          "; sequential vs fast-path vs fast-path+" +
          std::to_string(shards) + " shards");

  std::printf("%5s %-10s | %11s %10s | %12s %11s %11s %9s\n", "procs",
              "engine", "actions(M)", "replay(s)", "actions/sec",
              "resumes(M)", "inline(M)", "parfills");

  bool all_identical = true;
  for (const int procs : proc_counts()) {
    apps::LuConfig cfg;
    cfg.cls = apps::NpbClass::B;
    cfg.nprocs = procs;
    cfg.iteration_scale = scale;

    const auto workdir =
        bench::fresh_workdir("fig9par_" + std::to_string(procs));
    bench::WorkdirGuard guard(workdir);

    acq::AcquisitionSpec spec;
    spec.app = apps::make_lu_app(cfg);
    spec.mode = acq::Mode::folding;
    spec.folding = std::max(1, procs / 8);
    spec.workdir = workdir;
    spec.run_uninstrumented_baseline = false;
    const auto r = acq::run_acquisition(spec);

    plat::Platform target;
    const auto hosts = plat::build_cluster(target, plat::bordereau_spec(procs));
    const auto traces = trace::TraceSet::per_process_files(r.ti_files);

    struct Mode {
      const char* name;
      bool fast_path;
      int shards;
    };
    const Mode modes[] = {{"sequential", false, 1},
                          {"fast-path", true, 1},
                          {"fp+shards", true, shards}};
    double reference_time = 0.0;
    for (const Mode& mode : modes) {
      replay::ReplayConfig config;
      config.fast_path = mode.fast_path;
      config.shards = mode.shards;
      replay::Replayer replayer(target, hosts, traces, config);

      const auto start = std::chrono::steady_clock::now();
      const auto result = replayer.run();
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();

      if (mode.shards == 1 && !mode.fast_path)
        reference_time = result.simulated_time;
      else if (result.simulated_time != reference_time)
        all_identical = false;

      std::printf("%5d %-10s | %11.2f %10.2f | %12.0f %11.2f %11.2f %9llu\n",
                  procs, mode.name, result.actions_replayed / 1e6, wall,
                  result.actions_replayed / wall,
                  result.engine_stats.resumes / 1e6,
                  result.engine_stats.fast_path_inline / 1e6,
                  static_cast<unsigned long long>(
                      result.engine_stats.solver_parallel_fills));
      std::fflush(stdout);
    }
  }
  std::printf("\nsimulated times bit-identical across engines: %s\n",
              all_identical ? "yes" : "NO — BUG");
  return all_identical ? 0 : 1;
}
