// Table 2: execution time of the instrumented LU benchmark (64 processes)
// under the acquisition modes R, F-2..F-32, S-2, SF-(2,2)..SF-(2,16), plus
// the §6.2 punchline: the *replayed* time is mode-invariant (< 1%).
//
// Paper shapes to reproduce:
//   - execution time grows roughly linearly with the folding factor;
//   - S-2's ratio stays below the number of sites (1.81 / 1.48 in-paper);
//   - SF cumulates both overheads;
//   - the simulated (replayed) time varies by less than 1% across modes.
#include <cstdio>
#include <vector>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "replay/replayer.hpp"
#include "support/stats.hpp"

using namespace tir;

namespace {

struct ModeSpec {
  acq::Mode mode;
  int folding;
};

const ModeSpec kModes[] = {
    {acq::Mode::regular, 1},         {acq::Mode::folding, 2},
    {acq::Mode::folding, 4},         {acq::Mode::folding, 8},
    {acq::Mode::folding, 16},        {acq::Mode::folding, 32},
    {acq::Mode::scattering, 1},      {acq::Mode::scatter_folding, 2},
    {acq::Mode::scatter_folding, 4}, {acq::Mode::scatter_folding, 8},
    {acq::Mode::scatter_folding, 16},
};

}  // namespace

int main() {
  // Table 2 is the most expensive bench (22 acquisitions of 64-rank runs):
  // run at half the global scale by default.
  const double scale = bench::scale() * 0.5;
  const int nprocs = 64;
  bench::banner("Table 2 — instrumented execution time vs acquisition mode",
                "LU classes B and C, 64 processes; iteration fraction " +
                    std::to_string(scale));

  for (const auto cls : {apps::NpbClass::B, apps::NpbClass::C}) {
    std::printf("\nClass %s\n", apps::to_string(cls).c_str());
    std::printf("%-10s %6s | %14s %8s | %14s\n", "mode", "nodes", "exec (s)",
                "ratio", "replayed (s)");

    apps::LuConfig cfg;
    cfg.cls = cls;
    cfg.nprocs = nprocs;
    cfg.iteration_scale = scale;

    double regular_time = 0.0;
    std::vector<double> replayed_times;
    for (const auto& mode : kModes) {
      const auto workdir = bench::fresh_workdir(
          "table2_" + apps::to_string(cls) + "_" +
          acq::mode_label(mode.mode, mode.folding));
      bench::WorkdirGuard guard(workdir);

      acq::AcquisitionSpec spec;
      spec.app = apps::make_lu_app(cfg);
      spec.mode = mode.mode;
      spec.folding = mode.folding;
      spec.workdir = workdir;
      spec.run_uninstrumented_baseline = false;
      // Per-burst PAPI-like counter noise; the paper's <1% replay-time
      // variation stems from exactly this.
      spec.instrument.counter_jitter = 2e-4;
      spec.instrument.seed =
          42u + static_cast<unsigned>(mode.folding) * 17u +
          static_cast<unsigned>(mode.mode) * 131u;
      const auto r = acq::run_acquisition(spec);
      if (mode.mode == acq::Mode::regular) regular_time = r.instrumented_time;

      // Replay the acquired trace on the calibrated target (paper §6.2:
      // the simulated time must not depend on the acquisition scenario).
      plat::Platform target;
      const auto hosts =
          plat::build_cluster(target, plat::bordereau_spec(nprocs));
      const auto traces = trace::TraceSet::per_process_files(r.ti_files);
      replay::Replayer replayer(target, hosts, traces);
      const double replayed = replayer.run().simulated_time;
      replayed_times.push_back(replayed);

      std::printf("%-10s %6d | %14.2f %8.2f | %14.3f\n", r.mode.c_str(),
                  r.nodes_used, r.instrumented_time,
                  regular_time > 0 ? r.instrumented_time / regular_time : 1.0,
                  replayed);
      std::fflush(stdout);
    }

    double max_dev = 0;
    for (const double t : replayed_times)
      max_dev = std::max(max_dev, tir::relative_error(t, replayed_times[0]));
    std::printf("  -> replayed-time deviation across modes: %.3f%% "
                "(paper: < 1%%)\n", 100.0 * max_dev);
  }
  return 0;
}
