// Table 2: execution time of the instrumented LU benchmark (64 processes)
// under the acquisition modes R, F-2..F-32, S-2, SF-(2,2)..SF-(2,16), plus
// the §6.2 punchline: the *replayed* time is mode-invariant (< 1%).
//
// Paper shapes to reproduce:
//   - execution time grows roughly linearly with the folding factor;
//   - S-2's ratio stays below the number of sites (1.81 / 1.48 in-paper);
//   - SF cumulates both overheads;
//   - the simulated (replayed) time varies by less than 1% across modes.
//
// The replay column is produced by one parallel sweep over the scenario
// layer: every mode's trace replays against the same shared target
// platform. The bench also writes <workdir>/table2_scenarios.list — the
// same table reproduces end-to-end with
//   tir-sweep <workdir>/table2_scenarios.list
// (set TIR_KEEP_WORKDIR=1 to keep the traces around for that).
#include <cstdio>
#include <fstream>
#include <optional>
#include <vector>

#include "acquisition/acquisition.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "platform/cluster.hpp"
#include "platform/deployment.hpp"
#include "platform/platform_file.hpp"
#include "replay/sweep.hpp"
#include "support/stats.hpp"

using namespace tir;

namespace {

struct ModeSpec {
  acq::Mode mode;
  int folding;
};

const ModeSpec kModes[] = {
    {acq::Mode::regular, 1},         {acq::Mode::folding, 2},
    {acq::Mode::folding, 4},         {acq::Mode::folding, 8},
    {acq::Mode::folding, 16},        {acq::Mode::folding, 32},
    {acq::Mode::scattering, 1},      {acq::Mode::scatter_folding, 2},
    {acq::Mode::scatter_folding, 4}, {acq::Mode::scatter_folding, 8},
    {acq::Mode::scatter_folding, 16},
};

bool keep_workdir() {
  const char* keep = std::getenv("TIR_KEEP_WORKDIR");
  return keep != nullptr && std::string(keep) == "1";
}

}  // namespace

int main() {
  // Table 2 is the most expensive bench (22 acquisitions of 64-rank runs):
  // run at half the global scale by default.
  const double scale = bench::scale() * 0.5;
  const int nprocs = 64;
  bench::banner("Table 2 — instrumented execution time vs acquisition mode",
                "LU classes B and C, 64 processes; iteration fraction " +
                    std::to_string(scale));

  for (const auto cls : {apps::NpbClass::B, apps::NpbClass::C}) {
    std::printf("\nClass %s\n", apps::to_string(cls).c_str());

    apps::LuConfig cfg;
    cfg.cls = cls;
    cfg.nprocs = nprocs;
    cfg.iteration_scale = scale;

    const auto workdir =
        bench::fresh_workdir("table2_" + apps::to_string(cls));
    std::optional<bench::WorkdirGuard> guard;
    if (!keep_workdir()) guard.emplace(workdir);

    // The shared target: one immutable platform for every mode's replay
    // (paper §6.2 replays all acquisitions on the same calibrated cluster).
    const auto target = std::make_shared<plat::Platform>();
    const auto target_hosts =
        plat::build_cluster(*target, plat::bordereau_spec(nprocs));

    // Acquisitions are inherently serial (each simulates the instrumented
    // run); they produce one ScenarioSpec per mode for the replay sweep.
    struct AcqRow {
      std::string mode;
      int nodes = 0;
      double exec_time = 0.0;
    };
    std::vector<AcqRow> rows;
    std::vector<replay::ScenarioSpec> scenarios;
    for (const auto& mode : kModes) {
      const auto mode_dir =
          workdir / acq::mode_label(mode.mode, mode.folding);

      acq::AcquisitionSpec spec;
      spec.app = apps::make_lu_app(cfg);
      spec.mode = mode.mode;
      spec.folding = mode.folding;
      spec.workdir = mode_dir;
      spec.run_uninstrumented_baseline = false;
      // Per-burst PAPI-like counter noise; the paper's <1% replay-time
      // variation stems from exactly this.
      spec.instrument.counter_jitter = 2e-4;
      spec.instrument.seed =
          42u + static_cast<unsigned>(mode.folding) * 17u +
          static_cast<unsigned>(mode.mode) * 131u;
      const auto r = acq::run_acquisition(spec);
      rows.push_back({r.mode, r.nodes_used, r.instrumented_time});

      replay::ScenarioSpec scenario;
      scenario.name = r.mode;
      scenario.platform = target;
      scenario.process_hosts = target_hosts;
      scenario.traces = trace::TraceSet::per_process_files(r.ti_files);
      scenarios.push_back(std::move(scenario));
    }

    // Replay every mode's trace in one sweep (8 workers; results are
    // worker-count-invariant, see tests/sweep_test.cpp).
    const auto replays =
        replay::run_sweep(scenarios, {.workers = 8, .rethrow_errors = true});

    // The same replay table as a tir-sweep scenario list.
    const auto platform_xml = workdir / "table2_platform.xml";
    std::ofstream(platform_xml)
        << plat::cluster_to_xml(plat::bordereau_spec(nprocs), "AS_bordeaux");
    const auto deployment_xml = workdir / "table2_deployment.xml";
    std::ofstream(deployment_xml)
        << plat::Deployment::block(*target, target_hosts, nprocs).to_xml();
    {
      std::ofstream list(workdir / "table2_scenarios.list");
      list << "# Table 2 replay column: tir-sweep table2_scenarios.list\n"
           << "default platform=table2_platform.xml"
           << " deployment=table2_deployment.xml\n";
      for (std::size_t i = 0; i < scenarios.size(); ++i)
        list << "name=" << replays[i].name << " traces="
             << acq::mode_label(kModes[i].mode, kModes[i].folding)
             << "/ti\n";
    }

    std::printf("%-10s %6s | %14s %8s | %14s\n", "mode", "nodes", "exec (s)",
                "ratio", "replayed (s)");
    const double regular_time = rows.front().exec_time;
    std::vector<double> replayed_times;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double replayed = replays[i].replay.simulated_time;
      replayed_times.push_back(replayed);
      std::printf("%-10s %6d | %14.2f %8.2f | %14.3f\n",
                  rows[i].mode.c_str(), rows[i].nodes,
                  rows[i].exec_time,
                  regular_time > 0 ? rows[i].exec_time / regular_time : 1.0,
                  replayed);
    }
    std::fflush(stdout);

    double max_dev = 0;
    for (const double t : replayed_times)
      max_dev = std::max(max_dev, tir::relative_error(t, replayed_times[0]));
    std::printf("  -> replayed-time deviation across modes: %.3f%% "
                "(paper: < 1%%)\n", 100.0 * max_dev);
    if (keep_workdir())
      std::printf("  -> scenario list kept at %s\n",
                  (workdir / "table2_scenarios.list").c_str());
  }
  return 0;
}
