// Shared plumbing for the benchmark binaries.
//
// Every bench reproduces one table or figure of the paper. By default the
// LU instances run a documented fraction of their iterations so the whole
// suite finishes in minutes on a laptop:
//   TIR_SCALE=<0..1>  iteration fraction (default 0.1)
//   TIR_FULL=1        paper-scale instances (TIR_SCALE=1)
// Simulated times scale accordingly; the *shapes* the paper reports
// (ratios, trends, crossovers) are scale-invariant, which is what
// EXPERIMENTS.md compares.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace tir::bench {

inline double scale() {
  if (const char* full = std::getenv("TIR_FULL");
      full != nullptr && std::string(full) == "1")
    return 1.0;
  if (const char* s = std::getenv("TIR_SCALE"); s != nullptr) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return 0.1;
}

inline std::filesystem::path fresh_workdir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tir_bench_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

inline void banner(const char* title, const std::string& notes) {
  std::printf("\n============================================================"
              "====================\n%s\n", title);
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("=============================================================="
              "==================\n");
}

struct WorkdirGuard {
  std::filesystem::path dir;
  explicit WorkdirGuard(std::filesystem::path d) : dir(std::move(d)) {}
  ~WorkdirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

}  // namespace tir::bench
